package bench

import (
	"sort"
	"sync"
)

// Perf accumulates per-cell throughput samples across a rumbench invocation
// so the bench trajectory can be tracked machine-readably between revisions
// (the -benchjson artifact). Experiments that meter a device record each
// cell's deterministic ops-per-kilocost figure here; wall-clock timing stays
// out — the artifact must be diffable across hosts.
//
// A nil *Perf records nothing, so experiments call Record unconditionally.
type Perf struct {
	mu      sync.Mutex
	entries []PerfEntry
}

// PerfEntry is one cell's throughput sample.
type PerfEntry struct {
	Exp  string `json:"exp"`
	Cell string `json:"cell"`
	// OpsPerKCost is operations per 1000 medium-weighted device cost units —
	// the suite's deterministic throughput stand-in (see QDRow.OpsPerKCost).
	OpsPerKCost float64 `json:"ops_per_kcost"`
}

// Record adds one cell's sample. Safe from concurrent run cells.
func (p *Perf) Record(exp, cell string, opsPerKCost float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.entries = append(p.entries, PerfEntry{Exp: exp, Cell: cell, OpsPerKCost: opsPerKCost})
	p.mu.Unlock()
}

// Entries returns the samples sorted by (experiment, cell) — a stable order
// regardless of runner width.
func (p *Perf) Entries() []PerfEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := append([]PerfEntry(nil), p.entries...)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exp != out[j].Exp {
			return out[i].Exp < out[j].Exp
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}
