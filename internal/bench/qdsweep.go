package bench

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/storage"
	"repro/internal/workload"
)

// The qdsweep experiment prices queue depth: the same write-heavy workload
// against each page-based structure on a multi-queue SSD (storage.MQSSD,
// 8 channels), sweeping the pool's I/O batch. Batch 1 submits every page
// alone — the flat Aggarwal–Vitter model every other experiment uses; larger
// batches let the pool's vectored write-back (and the structures' readahead
// and streaming paths) fill the device's channels, and the cost model charges
// the batch at its achieved depth: ceil(n/channels) waves instead of n.
//
// The sweep asks the RUM question the flat model cannot: does the ranking of
// structures survive the medium? A structure whose traffic arrives in runs
// (the LSM's flush and compaction streams) amortizes almost ideally; one
// whose dirty pages trickle out a page at a time (the B-tree under random
// updates) only batches what the eviction group happens to gather. Each cell
// reports cost-unit throughput (ops per 1000 medium-weighted cost units),
// the per-op cost distribution, and the batch ledger itself: submissions,
// batched pages, and the achieved depth they imply.

// qdsweepBatches is the I/O batch sweep, batch 1 first: later rows render
// their throughput as a multiple of the depth-1 baseline. 8 saturates the
// MQSSD's channels in one wave; 32 needs four.
var qdsweepBatches = []int{1, 4, 8, 32}

// qdSubject is one structure under test: how to build it over a pool.
type qdSubject struct {
	name  string
	build func(pool *storage.BufferPool) (core.AccessMethod, error)
}

func qdSubjects() []qdSubject {
	return []qdSubject{
		{
			name: "btree",
			build: func(p *storage.BufferPool) (core.AccessMethod, error) {
				return btree.New(p, btree.Config{})
			},
		},
		{
			name: "lsm-level",
			build: func(p *storage.BufferPool) (core.AccessMethod, error) {
				return lsm.New(p, lsm.Config{MemtableRecords: 1024, SizeRatio: 10}), nil
			},
		},
		{
			name: "lsm-tier",
			build: func(p *storage.BufferPool) (core.AccessMethod, error) {
				return lsm.New(p, lsm.Config{MemtableRecords: 1024, SizeRatio: 10, Tiering: true}), nil
			},
		},
	}
}

// QDRow is one (structure, I/O batch) cell.
type QDRow struct {
	Method string
	Batch  int
	// OpsPerKCost is operations per 1000 medium-weighted device cost units
	// over the measured phase — the deterministic throughput stand-in.
	OpsPerKCost float64
	// CostP50/P99/Max is the per-op device cost distribution: batching does
	// not remove the write-back bursts, it compresses their price.
	CostP50, CostP99, CostMax uint64
	// The measured phase's device ledger.
	PageReads, PageWrites uint64
	// The batch ledger: amortized submissions, the pages they carried, and
	// the mean achieved depth (BatchedPages/Batches; 0 when nothing batched).
	Batches, BatchedPages uint64
}

// AvgDepth is the mean achieved queue depth of the cell's batches.
func (r QDRow) AvgDepth() float64 {
	if r.Batches == 0 {
		return 0
	}
	return float64(r.BatchedPages) / float64(r.Batches)
}

// QDSweepResult is the rendered qdsweep experiment.
type QDSweepResult struct {
	Ops  int
	Rows []QDRow
}

// RunQDSweep measures every (structure, batch) cell.
func RunQDSweep(cfg Config) QDSweepResult {
	cfg.Defaults()
	if cfg.Storage.PoolPages == 0 {
		// Default pool (64 pages): big enough for dirty frames to accumulate
		// into full-width eviction groups and for readahead to have room,
		// small enough that the device still sees the structures' traffic.
		cfg.Storage.PoolPages = 64
	}
	// The sweep runs on the multi-queue SSD: same per-page service times as
	// the flat SSD (read 4, write 20), so any throughput difference against
	// the other experiments is attributable to batching alone.
	cfg.Storage.Medium = storage.MQSSD
	subjects := qdSubjects()
	rows := make([]QDRow, len(subjects)*len(qdsweepBatches))
	cells := make([]Cell, 0, len(rows))
	for si, sub := range subjects {
		for bi, batch := range qdsweepBatches {
			idx, sub, batch := si*len(qdsweepBatches)+bi, sub, batch
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/b=%d", sub.name, batch),
				Run:   func(ccfg Config) { rows[idx] = runQDCell(ccfg, sub, batch) },
			})
		}
	}
	cfg.runCells("qdsweep", cells)
	return QDSweepResult{Ops: cfg.Ops, Rows: rows}
}

func runQDCell(cfg Config, sub qdSubject, batch int) QDRow {
	row := QDRow{Method: sub.name, Batch: batch}

	dev := storage.NewDevice(pageSize(cfg), cfg.Storage.Medium, nil)
	pool := storage.NewBufferPool(dev, poolPages(cfg))
	pool.SetIOBatch(batch) // batch 1 disables the vectored paths entirely
	if cfg.Storage.Hook != nil {
		dev.SetHook(cfg.Storage.Hook)
		pool.SetHook(cfg.Storage.Hook)
	}
	am, err := sub.build(pool)
	if err != nil {
		panic(fmt.Sprintf("qdsweep: build %s: %v", sub.name, err))
	}
	in := core.Instrument(am)
	cfg.observe(in, fmt.Sprintf("qd/%s/b=%d", sub.name, batch))

	gen := workload.New(workload.Config{
		Seed:       cfg.Seed,
		Mix:        workload.WriteHeavy, // write-back traffic is what batching amortizes
		InitialLen: cfg.N,
	})
	if err := core.Preload(in, gen); err != nil {
		panic(fmt.Sprintf("qdsweep: preload %s: %v", sub.name, err))
	}
	in.Flush()

	before := dev.Stats()
	costs := make([]uint64, cfg.Ops)
	flushEvery := cfg.Ops / 8
	prev := before.CostUnits
	var st core.OpStats
	for i := 0; i < cfg.Ops; i++ {
		core.Apply(in, gen.Next(), &st)
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			in.Flush() // periodic flush: its vectored burst lands in this op's cost
		}
		now := dev.Stats().CostUnits
		costs[i] = now - prev
		prev = now
	}
	after := dev.Stats()
	if total := after.CostUnits - before.CostUnits; total > 0 {
		row.OpsPerKCost = float64(cfg.Ops) * 1000 / float64(total)
	}
	cfg.Perf.Record("qdsweep", fmt.Sprintf("%s/b=%d", sub.name, batch), row.OpsPerKCost)
	slices.Sort(costs)
	quantile := func(q float64) uint64 { return costs[int(q*float64(len(costs)-1))] }
	row.CostP50, row.CostP99, row.CostMax = quantile(0.50), quantile(0.99), costs[len(costs)-1]
	row.PageReads = after.PageReads - before.PageReads
	row.PageWrites = after.PageWrites - before.PageWrites
	row.Batches = after.Batches - before.Batches
	row.BatchedPages = after.BatchedPages - before.BatchedPages
	return row
}

// Render prints the sweep table plus the re-ranking summary.
func (r QDSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Queue-depth sweep: I/O batching on a multi-queue SSD\n")
	fmt.Fprintf(&b, "page structures on MQSSD (read 4, write 20 per page, 8 channels), write-heavy\n")
	fmt.Fprintf(&b, "mix, %d measured ops; a batch of n pages costs ceil(n/8) waves instead of n,\n", r.Ops)
	fmt.Fprintf(&b, "so achieved depth — not raw traffic — sets the bill; ops/kcost = ops per 1000\n")
	fmt.Fprintf(&b, "medium-weighted cost units\n\n")
	base := map[string]float64{}
	for _, row := range r.Rows {
		if row.Batch == 1 {
			base[row.Method] = row.OpsPerKCost
		}
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		speedup := "-"
		if b1 := base[row.Method]; b1 > 0 {
			speedup = fmt.Sprintf("%.2fx", row.OpsPerKCost/b1)
		}
		depth := "-"
		if row.Batches > 0 {
			depth = fmt.Sprintf("%.1f", row.AvgDepth())
		}
		rows = append(rows, []string{
			row.Method,
			fmt.Sprintf("%d", row.Batch),
			fmt.Sprintf("%.1f", row.OpsPerKCost),
			speedup,
			fmt.Sprintf("%d", row.CostP50),
			fmt.Sprintf("%d", row.CostP99),
			fmt.Sprintf("%d", row.CostMax),
			fmt.Sprintf("%d", row.PageReads),
			fmt.Sprintf("%d", row.PageWrites),
			fmt.Sprintf("%d", row.Batches),
			fmt.Sprintf("%d", row.BatchedPages),
			depth,
		})
	}
	b.WriteString(table(
		[]string{"method", "batch", "ops/kcost", "vs-b1", "cost-p50", "p99", "max", "reads", "writes", "batches", "batched-pg", "depth"},
		rows,
	))

	// Re-ranking summary: the flat model's verdict is the b=1 column; the
	// deep-queue verdict is the largest batch. Render both rankings and the
	// head-to-head ratio so a shift in either is visible at a glance.
	maxBatch := 0
	for _, row := range r.Rows {
		if row.Batch > maxBatch {
			maxBatch = row.Batch
		}
	}
	ranking := func(batch int) string {
		type entry struct {
			name string
			ops  float64
		}
		var es []entry
		for _, row := range r.Rows {
			if row.Batch == batch {
				es = append(es, entry{row.Method, row.OpsPerKCost})
			}
		}
		slices.SortStableFunc(es, func(a, b entry) int {
			switch {
			case a.ops > b.ops:
				return -1
			case a.ops < b.ops:
				return 1
			}
			return 0
		})
		parts := make([]string, len(es))
		for i, e := range es {
			parts[i] = fmt.Sprintf("%s (%.1f)", e.name, e.ops)
		}
		return strings.Join(parts, " > ")
	}
	b.WriteString("\nRanking by ops/kcost:\n")
	fmt.Fprintf(&b, "  flat model (b=1):   %s\n", ranking(1))
	fmt.Fprintf(&b, "  deep queues (b=%d): %s\n", maxBatch, ranking(maxBatch))
	b.WriteString("\nAt depth 1 this is the flat SSD every other experiment prices — same service\ntimes, same ranking. Deep queues repay structures in proportion to how much\nof their traffic arrives in runs: the LSM's flush and compaction streams\nbatch at full channel width, while the B-tree's random dirty pages only\nbatch what the eviction group gathers. The medium, not just the workload,\nis part of the access method's cost — which is the RUM conjecture's point\nrestated at the device interface.\n")
	return b.String()
}
