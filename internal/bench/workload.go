package bench

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/serve"
)

// This file is the serve experiment's workload generator, exported: the
// same deterministic, conflict-free client streams that drive the batch
// experiment (RunServe) also drive the live daemon (cmd/rumserve), which
// needs an open-ended generator rather than a pregenerated slice. Each
// client owns a namespaced key range and draws from its own PCG stream, so
// every request's outcome is computable at generation time — the live
// serving layer is verified against predictions on every batch, exactly
// like the experiment.

// ServeMix is the operation mix of a generated client stream. Get, Insert,
// Update, and Delete are fractions of all requests (summing to ~1);
// GetMiss is the fraction of gets that target an absent key.
type ServeMix struct {
	Get, Insert, Update, Delete float64
	GetMiss                     float64
}

// DefaultServeMix returns the serve experiment's fixed mix: point-op heavy,
// no range scans.
func DefaultServeMix() ServeMix {
	return ServeMix{
		Get:     serveFracGet,
		Insert:  serveFracInsert,
		Update:  serveFracUpdate,
		Delete:  1 - serveFracGet - serveFracInsert - serveFracUpdate,
		GetMiss: serveGetMiss,
	}
}

// Validate checks the mix: every fraction in [0,1], op fractions summing to
// 1 within rounding slack.
func (m ServeMix) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"get", m.Get}, {"insert", m.Insert}, {"update", m.Update}, {"delete", m.Delete}, {"getmiss", m.GetMiss}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("mix: %s=%g outside [0,1]", f.name, f.v)
		}
	}
	sum := m.Get + m.Insert + m.Update + m.Delete
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("mix: op fractions sum to %g, want 1", sum)
	}
	return nil
}

// serveMixPresets are the named mixes ParseServeMix accepts in place of (or
// before) key=value pairs. The read-heavy ones are the MVCC experiment's
// operating points: snapshot reads only pay off when reads dominate.
var serveMixPresets = map[string]ServeMix{
	"read50":  {Get: 0.50, Insert: 0.20, Update: 0.15, Delete: 0.15, GetMiss: serveGetMiss},
	"read90":  {Get: 0.90, Insert: 0.04, Update: 0.03, Delete: 0.03, GetMiss: serveGetMiss},
	"read99":  {Get: 0.99, Insert: 0.004, Update: 0.003, Delete: 0.003, GetMiss: serveGetMiss},
	"read100": {Get: 1, GetMiss: serveGetMiss},
}

// ServeMixPresets lists the named mixes in sorted order, for usage text.
func ServeMixPresets() []string {
	names := make([]string, 0, len(serveMixPresets))
	for n := range serveMixPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseServeMix parses "get=0.5,insert=0.2,update=0.15,delete=0.15" (any
// subset; omitted ops default to the standard mix, getmiss included) and
// validates the result. A preset name — "read99" and friends, see
// ServeMixPresets — may stand alone or lead the list, with key=value pairs
// after it overriding preset fields: "read99,getmiss=0.2".
func ParseServeMix(s string) (ServeMix, error) {
	m := DefaultServeMix()
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	parts := strings.Split(s, ",")
	if first := strings.TrimSpace(parts[0]); !strings.Contains(first, "=") && first != "" {
		p, ok := serveMixPresets[first]
		if !ok {
			return m, fmt.Errorf("mix: unknown preset %q (want %s, or key=value pairs)",
				first, strings.Join(ServeMixPresets(), "/"))
		}
		m = p
		parts = parts[1:]
	}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("mix: %q is not key=value", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return m, fmt.Errorf("mix: %q: %v", part, err)
		}
		switch strings.TrimSpace(kv[0]) {
		case "get":
			m.Get = v
		case "insert":
			m.Insert = v
		case "update":
			m.Update = v
		case "delete":
			m.Delete = v
		case "getmiss":
			m.GetMiss = v
		default:
			return m, fmt.Errorf("mix: unknown op %q (want get/insert/update/delete/getmiss)", kv[0])
		}
	}
	return m, m.Validate()
}

// String renders the mix in ParseServeMix form.
func (m ServeMix) String() string {
	return fmt.Sprintf("get=%g,insert=%g,update=%g,delete=%g,getmiss=%g",
		m.Get, m.Insert, m.Update, m.Delete, m.GetMiss)
}

// StreamGen deterministically generates one client's conflict-free request
// stream together with the precomputed outcome of every request. The
// client owns the keys tagged client+1 in the high bits, so streams from
// different clients never conflict and per-client submission order is the
// only order that matters. A StreamGen is single-goroutine, like the access
// methods it feeds.
type StreamGen struct {
	rng              *rand.Rand
	ns               core.Key
	tGet, tIns, tUpd float64
	miss             float64

	used  map[core.Key]bool
	model map[core.Key]core.Value
	live  []core.Key
	pos   map[core.Key]int
}

// NewStreamGen returns client's generator for the given seed and mix. The
// (seed, client) pair fully determines the stream.
func NewStreamGen(seed int64, client int, mix ServeMix) *StreamGen {
	return &StreamGen{
		rng:   rand.New(rand.NewPCG(uint64(seed), serveStreamSalt+uint64(client))),
		ns:    core.Key(client+1) << 44,
		tGet:  mix.Get,
		tIns:  mix.Get + mix.Insert,
		tUpd:  mix.Get + mix.Insert + mix.Update,
		miss:  mix.GetMiss,
		used:  make(map[core.Key]bool),
		model: make(map[core.Key]core.Value),
		pos:   make(map[core.Key]int),
	}
}

// fresh draws an unused key from the client's namespace.
func (g *StreamGen) fresh() core.Key {
	for {
		k := g.ns | core.Key(g.rng.Uint64()&(1<<40-1))
		if !g.used[k] {
			g.used[k] = true
			return k
		}
	}
}

func (g *StreamGen) addLive(k core.Key) {
	g.pos[k] = len(g.live)
	g.live = append(g.live, k)
}

func (g *StreamGen) removeLive(k core.Key) {
	i := g.pos[k]
	last := len(g.live) - 1
	g.live[i] = g.live[last]
	g.pos[g.live[i]] = i
	g.live = g.live[:last]
	delete(g.pos, k)
}

// pick returns a uniformly random live key.
func (g *StreamGen) pick() (core.Key, bool) {
	if len(g.live) == 0 {
		return 0, false
	}
	return g.live[g.rng.IntN(len(g.live))], true
}

// insert generates a fresh-key insert, which always succeeds.
func (g *StreamGen) insert() (serve.Request, serve.Result) {
	k := g.fresh()
	v := core.Value(g.rng.Uint64())
	g.model[k] = v
	g.addLive(k)
	return serve.Request{Op: serve.OpInsert, Key: k, Value: v}, serve.Result{OK: true}
}

// InitRecords generates n preload records (fresh keys, live in the model),
// returned sorted by key as BulkLoad requires. Call before the first Next.
func (g *StreamGen) InitRecords(n int) []core.Record {
	recs := make([]core.Record, 0, n)
	for i := 0; i < n; i++ {
		k := g.fresh()
		v := core.Value(g.rng.Uint64())
		recs = append(recs, core.Record{Key: k, Value: v})
		g.model[k] = v
		g.addLive(k)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

// Next generates the stream's next request and its exact expected outcome.
// The generator never exhausts: when the mix asks for an op the live set
// cannot supply (a hit on an empty model), it inserts instead.
func (g *StreamGen) Next() (serve.Request, serve.Result) {
	r := g.rng.Float64()
	switch {
	case r < g.tGet:
		if g.rng.Float64() < g.miss {
			return serve.Request{Op: serve.OpGet, Key: g.fresh()}, serve.Result{}
		}
		if k, ok := g.pick(); ok {
			return serve.Request{Op: serve.OpGet, Key: k}, serve.Result{Value: g.model[k], OK: true}
		}
		return g.insert()
	case r < g.tIns:
		return g.insert()
	case r < g.tUpd:
		if k, ok := g.pick(); ok {
			v := core.Value(g.rng.Uint64())
			g.model[k] = v
			return serve.Request{Op: serve.OpUpdate, Key: k, Value: v}, serve.Result{OK: true}
		}
		return g.insert()
	default:
		if k, ok := g.pick(); ok {
			delete(g.model, k)
			g.removeLive(k)
			return serve.Request{Op: serve.OpDelete, Key: k}, serve.Result{OK: true}
		}
		return g.insert()
	}
}

// Live returns the number of records the stream currently leaves live — the
// expected record count of this client's keyspace slice.
func (g *StreamGen) Live() int { return len(g.model) }

// MergeRecords sorts a combined preload slice by key, as BulkLoad and
// Server.Preload require. Client namespaces are disjoint, so concatenating
// per-client InitRecords and sorting is a true merge.
func MergeRecords(recs []core.Record) []core.Record {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}
