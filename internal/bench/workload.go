package bench

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/serve"
)

// This file is the serve experiment's workload generator, exported: the
// same deterministic, conflict-free client streams that drive the batch
// experiment (RunServe) also drive the live daemon (cmd/rumserve), which
// needs an open-ended generator rather than a pregenerated slice. Each
// client owns a namespaced key range and draws from its own PCG stream, so
// every request's outcome is computable at generation time — the live
// serving layer is verified against predictions on every batch, exactly
// like the experiment.

// ServeMix is the operation mix of a generated client stream. Get, Insert,
// Update, Delete, and Scan are fractions of all requests (summing to ~1);
// GetMiss is the fraction of gets that target an absent key; ScanRows is
// the target rows per range scan (default 256 when scans are present).
// Scans are generated only by NextOp — Next serves scan-free mixes and its
// draw sequence is byte-stable against pre-scan builds.
type ServeMix struct {
	Get, Insert, Update, Delete float64
	GetMiss                     float64
	Scan                        float64
	ScanRows                    int
}

// DefaultServeMix returns the serve experiment's fixed mix: point-op heavy,
// no range scans.
func DefaultServeMix() ServeMix {
	return ServeMix{
		Get:     serveFracGet,
		Insert:  serveFracInsert,
		Update:  serveFracUpdate,
		Delete:  1 - serveFracGet - serveFracInsert - serveFracUpdate,
		GetMiss: serveGetMiss,
	}
}

// Validate checks the mix: every fraction in [0,1], op fractions summing to
// 1 within rounding slack.
func (m ServeMix) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"get", m.Get}, {"insert", m.Insert}, {"update", m.Update}, {"delete", m.Delete}, {"getmiss", m.GetMiss}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("mix: %s=%g outside [0,1]", f.name, f.v)
		}
	}
	if m.Scan < 0 || m.Scan > 1 {
		return fmt.Errorf("mix: scan=%g outside [0,1]", m.Scan)
	}
	if m.ScanRows < 0 {
		return fmt.Errorf("mix: scanrows=%d negative", m.ScanRows)
	}
	sum := m.Get + m.Insert + m.Update + m.Delete + m.Scan
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("mix: op fractions sum to %g, want 1", sum)
	}
	return nil
}

// serveMixPresets are the named mixes ParseServeMix accepts in place of (or
// before) key=value pairs. The read-heavy ones are the MVCC experiment's
// operating points: snapshot reads only pay off when reads dominate.
var serveMixPresets = map[string]ServeMix{
	"read50":  {Get: 0.50, Insert: 0.20, Update: 0.15, Delete: 0.15, GetMiss: serveGetMiss},
	"read90":  {Get: 0.90, Insert: 0.04, Update: 0.03, Delete: 0.03, GetMiss: serveGetMiss},
	"read99":  {Get: 0.99, Insert: 0.004, Update: 0.003, Delete: 0.003, GetMiss: serveGetMiss},
	"read100": {Get: 1, GetMiss: serveGetMiss},
}

// ServeMixPresets lists the named mixes in sorted order, for usage text.
func ServeMixPresets() []string {
	names := make([]string, 0, len(serveMixPresets))
	for n := range serveMixPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseServeMix parses "get=0.5,insert=0.2,update=0.15,delete=0.15" (any
// subset; omitted ops default to the standard mix, getmiss included) and
// validates the result. A preset name — "read99" and friends, see
// ServeMixPresets — may stand alone or lead the list, with key=value pairs
// after it overriding preset fields: "read99,getmiss=0.2".
func ParseServeMix(s string) (ServeMix, error) {
	m := DefaultServeMix()
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	parts := strings.Split(s, ",")
	if first := strings.TrimSpace(parts[0]); !strings.Contains(first, "=") && first != "" {
		p, ok := serveMixPresets[first]
		if !ok {
			return m, fmt.Errorf("mix: unknown preset %q (want %s, or key=value pairs)",
				first, strings.Join(ServeMixPresets(), "/"))
		}
		m = p
		parts = parts[1:]
	}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("mix: %q is not key=value", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return m, fmt.Errorf("mix: %q: %v", part, err)
		}
		switch strings.TrimSpace(kv[0]) {
		case "get":
			m.Get = v
		case "insert":
			m.Insert = v
		case "update":
			m.Update = v
		case "delete":
			m.Delete = v
		case "getmiss":
			m.GetMiss = v
		case "scan":
			m.Scan = v
		case "scanrows":
			m.ScanRows = int(v)
		default:
			return m, fmt.Errorf("mix: unknown op %q (want get/insert/update/delete/getmiss/scan/scanrows)", kv[0])
		}
	}
	return m, m.Validate()
}

// String renders the mix in ParseServeMix form.
func (m ServeMix) String() string {
	s := fmt.Sprintf("get=%g,insert=%g,update=%g,delete=%g,getmiss=%g",
		m.Get, m.Insert, m.Update, m.Delete, m.GetMiss)
	if m.Scan > 0 {
		s += fmt.Sprintf(",scan=%g,scanrows=%d", m.Scan, m.scanRows())
	}
	return s
}

// scanRows returns the target rows per scan, defaulted.
func (m ServeMix) scanRows() int {
	if m.ScanRows > 0 {
		return m.ScanRows
	}
	return 256
}

// StreamGen deterministically generates one client's conflict-free request
// stream together with the precomputed outcome of every request. The
// client owns the keys tagged client+1 in the high bits, so streams from
// different clients never conflict and per-client submission order is the
// only order that matters. A StreamGen is single-goroutine, like the access
// methods it feeds.
type StreamGen struct {
	rng              *rand.Rand
	ns               core.Key
	tGet, tIns, tUpd float64
	miss             float64
	tScan            float64 // scan fraction; 0 keeps Next's exact draw sequence
	scanRows         int
	dist             KeyDist

	used  map[core.Key]bool
	model map[core.Key]core.Value
	live  []core.Key
	pos   map[core.Key]int
}

// NewStreamGen returns client's generator for the given seed and mix, with
// uniform key popularity. The (seed, client) pair fully determines the
// stream.
func NewStreamGen(seed int64, client int, mix ServeMix) *StreamGen {
	return NewStreamGenDist(seed, client, mix, UniformDist())
}

// NewStreamGenDist is NewStreamGen with an explicit key-popularity
// distribution. A uniform dist reproduces NewStreamGen's streams byte for
// byte (same draws, same keys); skewed dists change which live keys the
// get/update/delete pickers favor, nothing else.
func NewStreamGenDist(seed int64, client int, mix ServeMix, dist KeyDist) *StreamGen {
	g := &StreamGen{
		rng:   rand.New(rand.NewPCG(uint64(seed), serveStreamSalt+uint64(client))),
		ns:    core.Key(client+1) << 44,
		used:  make(map[core.Key]bool),
		model: make(map[core.Key]core.Value),
		pos:   make(map[core.Key]int),
	}
	g.SetPhase(mix, dist)
	return g
}

// fresh draws an unused key from the client's namespace.
func (g *StreamGen) fresh() core.Key {
	for {
		k := g.ns | core.Key(g.rng.Uint64()&(1<<40-1))
		if !g.used[k] {
			g.used[k] = true
			return k
		}
	}
}

func (g *StreamGen) addLive(k core.Key) {
	g.pos[k] = len(g.live)
	g.live = append(g.live, k)
}

func (g *StreamGen) removeLive(k core.Key) {
	i := g.pos[k]
	last := len(g.live) - 1
	g.live[i] = g.live[last]
	g.pos[g.live[i]] = i
	g.live = g.live[:last]
	delete(g.pos, k)
}

// pick returns a random live key under the stream's distribution. The
// uniform path is exactly one IntN draw — byte-identical to the
// pre-distribution generator; zipf draws one Float64, hotspot two.
func (g *StreamGen) pick() (core.Key, bool) {
	n := len(g.live)
	if n == 0 {
		return 0, false
	}
	switch g.dist.Kind {
	case "zipf":
		return g.live[g.dist.rank(g.rng.Float64(), 0, n)], true
	case "hotspot":
		return g.live[g.dist.rank(g.rng.Float64(), g.rng.Float64(), n)], true
	default:
		return g.live[g.rng.IntN(n)], true
	}
}

// insert generates a fresh-key insert, which always succeeds.
func (g *StreamGen) insert() (serve.Request, serve.Result) {
	k := g.fresh()
	v := core.Value(g.rng.Uint64())
	g.model[k] = v
	g.addLive(k)
	return serve.Request{Op: serve.OpInsert, Key: k, Value: v}, serve.Result{OK: true}
}

// InitRecords generates n preload records (fresh keys, live in the model),
// returned sorted by key as BulkLoad requires. Call before the first Next.
func (g *StreamGen) InitRecords(n int) []core.Record {
	recs := make([]core.Record, 0, n)
	for i := 0; i < n; i++ {
		k := g.fresh()
		v := core.Value(g.rng.Uint64())
		recs = append(recs, core.Record{Key: k, Value: v})
		g.model[k] = v
		g.addLive(k)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

// Next generates the stream's next request and its exact expected outcome.
// The generator never exhausts: when the mix asks for an op the live set
// cannot supply (a hit on an empty model), it inserts instead.
func (g *StreamGen) Next() (serve.Request, serve.Result) {
	r := g.rng.Float64()
	switch {
	case r < g.tGet:
		if g.rng.Float64() < g.miss {
			return serve.Request{Op: serve.OpGet, Key: g.fresh()}, serve.Result{}
		}
		if k, ok := g.pick(); ok {
			return serve.Request{Op: serve.OpGet, Key: k}, serve.Result{Value: g.model[k], OK: true}
		}
		return g.insert()
	case r < g.tIns:
		return g.insert()
	case r < g.tUpd:
		if k, ok := g.pick(); ok {
			v := core.Value(g.rng.Uint64())
			g.model[k] = v
			return serve.Request{Op: serve.OpUpdate, Key: k, Value: v}, serve.Result{OK: true}
		}
		return g.insert()
	default:
		if k, ok := g.pick(); ok {
			delete(g.model, k)
			g.removeLive(k)
			return serve.Request{Op: serve.OpDelete, Key: k}, serve.Result{OK: true}
		}
		return g.insert()
	}
}

// SetPhase switches the stream's mix and key distribution in place, keeping
// the rng stream, the model, and the live set: the generator keeps producing
// verifiable ops for the same keyspace while the traffic's shape changes —
// the primitive the drift experiment builds its diurnal phases from.
// Deterministic: the phase switch consumes no draws, so the stream after it
// is a pure function of (seed, client, op index, phase schedule).
func (g *StreamGen) SetPhase(mix ServeMix, dist KeyDist) {
	// NextOp spends a first draw on scan-or-point, so the point thresholds
	// are normalized over the point mass: the residual above tUpd is delete
	// and nothing else. With Scan = 0 the scale is 1 — byte-identical to the
	// pre-scan thresholds.
	scale := 1.0
	if mix.Scan > 0 && mix.Scan < 1 {
		scale = 1 / (1 - mix.Scan)
	}
	g.tGet = mix.Get * scale
	g.tIns = (mix.Get + mix.Insert) * scale
	g.tUpd = (mix.Get + mix.Insert + mix.Update) * scale
	g.miss = mix.GetMiss
	g.tScan = mix.Scan
	g.scanRows = mix.scanRows()
	g.dist = dist
}

// StreamOp is one generated operation in the scan-capable stream form:
// either a point request with its exact expected outcome, or (Scan true) a
// range scan over [Lo, Hi] with its exact expected row count. Scan ranges
// stay inside the client's namespace, so concurrent clients' scans are as
// conflict-free as their point ops.
type StreamOp struct {
	Req  serve.Request
	Want serve.Result

	Scan     bool
	Lo, Hi   core.Key
	WantRows int
}

// NextOp generates the stream's next operation, scans included. For a
// scan-free mix the scan branch never draws, so NextOp's stream is byte
// identical to Next's; with Scan > 0 each op spends one extra Float64 draw
// deciding scan-or-point first.
func (g *StreamGen) NextOp() StreamOp {
	if g.tScan > 0 && g.rng.Float64() < g.tScan {
		return g.scanOp()
	}
	req, want := g.Next()
	return StreamOp{Req: req, Want: want}
}

// scanOp generates a range scan anchored at a random live key, sized so
// the range holds ~scanRows of this client's uniformly scattered keys, with
// the exact expected row count computed from the model. Falls back to an
// insert when nothing is live.
func (g *StreamGen) scanOp() StreamOp {
	n := len(g.live)
	if n == 0 {
		req, want := g.insert()
		return StreamOp{Req: req, Want: want}
	}
	anchor := g.live[g.rng.IntN(n)]
	const lowBits = 1<<40 - 1
	span := core.Key(float64(uint64(lowBits)) / float64(n) * float64(g.scanRows))
	lo := anchor
	hi := anchor + span
	if max := g.ns | lowBits; hi > max || hi < lo {
		hi = max
	}
	rows := 0
	for _, k := range g.live {
		if k >= lo && k <= hi {
			rows++
		}
	}
	return StreamOp{Scan: true, Lo: lo, Hi: hi, WantRows: rows}
}

// Live returns the number of records the stream currently leaves live — the
// expected record count of this client's keyspace slice.
func (g *StreamGen) Live() int { return len(g.model) }

// MergeRecords sorts a combined preload slice by key, as BulkLoad and
// Server.Preload require. Client namespaces are disjoint, so concatenating
// per-client InitRecords and sorting is a true merge.
func MergeRecords(recs []core.Record) []core.Record {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}
