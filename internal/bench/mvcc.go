package bench

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/methods"
	"repro/internal/obs"
	"repro/internal/rum"
	"repro/internal/serve"
)

// The mvcc experiment measures what snapshot isolation buys and costs under
// the RUM framework: the serving layer's MVCC read path (serve.Config.
// Snapshots) sweeps snapshot lifetime (publish staleness) × read/write mix
// and reports read throughput and tail latency against the single-owner
// baseline, plus the memory-overhead tax of version retention.
//
// Determinism contract, same as the serve experiment: stdout carries only
// facts independent of scheduling — the RUM point of a deterministic
// sequential replay that applies the identical streams against one MVCC
// structure with the same publish cadence (by write count), retained-bytes
// at end of run, request counts, and the live run's outcome-verification
// verdict. Wall-clock facts (throughput, p99, speedup over the baseline) go
// to stderr via RenderTiming.
//
// The streams are stable-read by construction: every get targets the
// preloaded, never-mutated stable keyspace (namespace 0), and every write
// targets the client's own namespace. Outcomes are therefore exact under
// any staleness — a snapshot read is stale only with respect to keys the
// readers never ask about — which is what lets the relaxed-staleness cells
// keep the verification contract.

// mvccMethods are the snapshot-capable subjects.
var mvccMethods = []string{"btree", "lsm"}

// MVCCConfig sizes the mvcc experiment.
type MVCCConfig struct {
	// Shards and Clients mirror ServeConfig (defaults 4 and 8).
	Shards  int
	Clients int
	// Batch is the requests per Do call (default 64).
	Batch int
	// Versions is the retention window of every structure (default 3).
	Versions int
	// Stalenesses are the publish cadences to sweep, in writes between
	// publishes (default {1, 256}: strict read-your-writes vs relaxed).
	Stalenesses []int
	// Mixes are ServeMix preset names to sweep (default {read50, read99}).
	Mixes []string
}

func (c *MVCCConfig) defaults() error {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Versions <= 0 {
		c.Versions = 3
	}
	if len(c.Stalenesses) == 0 {
		c.Stalenesses = []int{1, 256}
	}
	if len(c.Mixes) == 0 {
		c.Mixes = []string{"read50", "read99"}
	}
	for _, m := range c.Mixes {
		if _, ok := serveMixPresets[m]; !ok {
			return fmt.Errorf("mvcc: unknown mix preset %q (want %s)", m, strings.Join(ServeMixPresets(), "/"))
		}
	}
	return nil
}

// mvccStreamSalt separates this experiment's PCG streams from every other
// consumer of the seed.
const mvccStreamSalt = 0x3fcc

// mvccStream is one client's pregenerated stream with exact expected
// outcomes (see the stable-read note in the package comment).
type mvccStream struct {
	ops     []serve.Request
	want    []serve.Result
	reads   int
	netLive int // records this client's writes leave live
}

// makeMVCCStable generates the shared stable keyspace: n records in
// namespace 0, preloaded once and never written afterwards.
func makeMVCCStable(seed int64, n int) []core.Record {
	rng := rand.New(rand.NewPCG(uint64(seed), mvccStreamSalt))
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{Key: core.Key(i + 1), Value: core.Value(rng.Uint64())}
	}
	return recs
}

// makeMVCCStream generates client's stream: gets drawn uniformly from the
// stable keyspace (or missing keys in the client's namespace, per GetMiss),
// writes confined to the client's namespace.
func makeMVCCStream(seed int64, client, nOps int, mix ServeMix, stable []core.Record) mvccStream {
	rng := rand.New(rand.NewPCG(uint64(seed), mvccStreamSalt+1+uint64(client)))
	ns := core.Key(client+1) << 44
	var st mvccStream
	st.ops = make([]serve.Request, 0, nOps)
	st.want = make([]serve.Result, 0, nOps)
	// Own-namespace write state.
	var live []core.Key
	model := make(map[core.Key]core.Value)
	nextFresh := uint64(0)
	fresh := func() core.Key { nextFresh++; return ns | core.Key(nextFresh) }
	wIns, wUpd, wDel := mix.Insert, mix.Update, mix.Delete
	if s := wIns + wUpd + wDel; s > 0 {
		wIns, wUpd, wDel = wIns/s, wUpd/s, wDel/s
	}
	for i := 0; i < nOps; i++ {
		if rng.Float64() < mix.Get {
			st.reads++
			if rng.Float64() < mix.GetMiss {
				// A key in the client's namespace above anything inserted:
				// a guaranteed miss under any staleness.
				st.ops = append(st.ops, serve.Request{Op: serve.OpGet, Key: ns | core.Key(1)<<43})
				st.want = append(st.want, serve.Result{})
				continue
			}
			r := stable[rng.IntN(len(stable))]
			st.ops = append(st.ops, serve.Request{Op: serve.OpGet, Key: r.Key})
			st.want = append(st.want, serve.Result{Value: r.Value, OK: true})
			continue
		}
		r := rng.Float64()
		switch {
		case r < wIns || len(live) == 0:
			k, v := fresh(), core.Value(rng.Uint64())
			model[k] = v
			live = append(live, k)
			st.ops = append(st.ops, serve.Request{Op: serve.OpInsert, Key: k, Value: v})
			st.want = append(st.want, serve.Result{OK: true})
		case r < wIns+wUpd:
			k, v := live[rng.IntN(len(live))], core.Value(rng.Uint64())
			model[k] = v
			st.ops = append(st.ops, serve.Request{Op: serve.OpUpdate, Key: k, Value: v})
			st.want = append(st.want, serve.Result{OK: true})
		default:
			i := rng.IntN(len(live))
			k := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(model, k)
			st.ops = append(st.ops, serve.Request{Op: serve.OpDelete, Key: k})
			st.want = append(st.want, serve.Result{OK: true})
		}
	}
	st.netLive = len(model)
	return st
}

// buildMVCC constructs a snapshot-capable subject with the given retention.
func buildMVCC(opt methods.Options, name string, versions int) *core.Instrumented {
	switch name {
	case "btree":
		return methods.NewBTree(opt, btree.Config{Versions: versions})
	case "lsm":
		return methods.NewLSM(opt, lsm.Config{MemtableRecords: 1024, SizeRatio: 10, BloomBitsPerKey: 10, Versions: versions})
	default:
		panic(fmt.Sprintf("mvcc: unknown method %q", name))
	}
}

// MVCCRow is one (method, mix, staleness) cell's measurements.
type MVCCRow struct {
	Method    string
	Mix       string
	Staleness int

	// Deterministic (stdout).
	Clean    rum.Point // sequential replay with the same publish cadence
	Retained uint64    // version-retention bytes at end of replay (the MO tax)
	Requests int
	Reads    int
	Verified bool // live outcomes matched predictions, reads used snapshots
	ServeErr string

	// Wall-clock (stderr).
	BaseThroughput float64 // single-owner baseline, requests/s
	SnapThroughput float64 // MVCC read path, requests/s
	ReadP99        time.Duration
	SnapReads      uint64 // reads served off snapshots, mailbox bypassed
}

// MVCCResult is the rendered mvcc experiment.
type MVCCResult struct {
	N, Ops, Clients int
	Shards, Batch   int
	Versions        int
	Rows            []MVCCRow
}

// RunMVCC profiles the MVCC read path across snapshot lifetime × read/write
// mix: a deterministic sequential replay per cell for the clean RUM point,
// then two live runs — single-owner baseline and snapshot-serving — for the
// wall-clock comparison.
func RunMVCC(cfg Config, mcfg MVCCConfig) MVCCResult {
	cfg.Defaults()
	if err := mcfg.defaults(); err != nil {
		panic(err.Error())
	}
	if cfg.Storage.PoolPages == 0 {
		cfg.Storage.PoolPages = 8
	}
	stable := makeMVCCStable(cfg.Seed, cfg.N)

	res := MVCCResult{
		N: len(stable), Clients: mcfg.Clients,
		Shards: mcfg.Shards, Batch: mcfg.Batch, Versions: mcfg.Versions,
	}
	type cellKey struct {
		method string
		mix    string
		k      int
	}
	var keys []cellKey
	for _, m := range mvccMethods {
		for _, mix := range mcfg.Mixes {
			for _, k := range mcfg.Stalenesses {
				keys = append(keys, cellKey{m, mix, k})
			}
		}
	}
	rows := make([]MVCCRow, len(keys))
	cells := make([]Cell, 0, 2*len(keys))
	for i, key := range keys {
		i, key := i, key
		streams := make([]mvccStream, mcfg.Clients)
		for c := range streams {
			streams[c] = makeMVCCStream(cfg.Seed, c, cfg.Ops/mcfg.Clients, serveMixPresets[key.mix], stable)
		}
		for _, st := range streams {
			rows[i].Requests += len(st.ops)
			rows[i].Reads += st.reads
		}
		res.Ops = rows[i].Requests
		label := fmt.Sprintf("%s/%s/k=%d", key.method, key.mix, key.k)
		cells = append(cells, Cell{
			Label: label + "/clean",
			Run: func(ccfg Config) {
				runMVCCClean(ccfg, key.method, key.k, mcfg.Versions, streams, stable, &rows[i])
			},
		})
		cells = append(cells, Cell{
			Label: label + "/serve",
			Run: func(ccfg Config) {
				runMVCCServing(ccfg, mcfg, key.method, key.k, streams, stable, &rows[i])
			},
		})
		rows[i].Method = key.method
		rows[i].Mix = key.mix
		rows[i].Staleness = key.k
	}
	cfg.runCells("mvcc", cells)
	res.Rows = rows
	return res
}

// runMVCCClean is the deterministic replay: one structure, clients applied
// sequentially, reads through an acquired snapshot, republished every k
// writes — the same cadence the serving layer uses, counted in writes
// instead of messages so it cannot depend on batching or scheduling.
func runMVCCClean(cfg Config, name string, k, versions int, streams []mvccStream, stable []core.Record, row *MVCCRow) {
	am := buildMVCC(cfg.Storage, name, versions)
	cfg.observe(am, fmt.Sprintf("mvcc:%s/k=%d/clean", name, k))
	if err := am.BulkLoad(stable); err != nil {
		panic(fmt.Sprintf("mvcc: %s: preload: %v", name, err))
	}
	am.Flush()
	if err := am.Publish(); err != nil {
		panic(fmt.Sprintf("mvcc: %s: publish: %v", name, err))
	}
	start := am.Meter().Snapshot()
	var readMeter rum.Meter
	snap := am.Acquire()
	writesSince := 0
	wantLive := len(stable)
	for _, st := range streams {
		wantLive += st.netLive
		for i := range st.ops {
			req, want := st.ops[i], st.want[i]
			var got serve.Result
			if req.Op == serve.OpGet {
				got.Value, got.OK = snap.Get(req.Key, &readMeter)
			} else {
				switch req.Op {
				case serve.OpInsert:
					got.OK = am.Insert(req.Key, req.Value) == nil
				case serve.OpUpdate:
					got.OK = am.Update(req.Key, req.Value)
				case serve.OpDelete:
					got.OK = am.Delete(req.Key)
				}
				if writesSince++; writesSince >= k {
					snap.Release()
					if err := am.Publish(); err != nil {
						panic(fmt.Sprintf("mvcc: %s: publish: %v", name, err))
					}
					snap = am.Acquire()
					writesSince = 0
				}
			}
			if got != want {
				panic(fmt.Sprintf("mvcc: %s: clean replay diverged on %+v: got %+v, want %+v", name, req, got, want))
			}
		}
	}
	snap.Release()
	am.Flush()
	total := am.Meter().Diff(start)
	total.Add(readMeter)
	row.Clean = rum.PointOf(total, am.Size())
	row.Retained = am.SnapshotStats().RetainedBytes
	if got := am.Len(); got != wantLive {
		panic(fmt.Sprintf("mvcc: %s: replay left %d records, streams predict %d", name, got, wantLive))
	}
}

// runMVCCServing times the live phase twice over the identical streams:
// single-owner baseline (Snapshots off), then the MVCC read path. Each
// client separates its stream into pure-read and write batches — reads are
// order-independent by construction, so this is outcome-preserving — and
// the read batches are what the bypass accelerates.
func runMVCCServing(cfg Config, mcfg MVCCConfig, name string, k int, streams []mvccStream, stable []core.Record, row *MVCCRow) {
	sopt := cfg.Storage
	sopt.Hook = nil
	base, _, _, baseMism, baseErr := mvccServeOnce(sopt, mcfg, name, k, false, streams, stable)
	snapTp, p99, snapReads, mism, serveErr := mvccServeOnce(sopt, mcfg, name, k, true, streams, stable)
	row.BaseThroughput = base
	row.SnapThroughput = snapTp
	row.ReadP99 = p99
	row.SnapReads = snapReads
	row.Verified = mism == 0 && baseMism == 0 && serveErr == "" && baseErr == "" && snapReads > 0
	if serveErr == "" {
		serveErr = baseErr
	}
	row.ServeErr = serveErr
}

// mvccServeOnce runs one live configuration and returns (requests/s, read
// p99, snapshot-served reads, outcome mismatches, error).
func mvccServeOnce(opt methods.Options, mcfg MVCCConfig, name string, k int, snapshots bool, streams []mvccStream, stable []core.Record) (float64, time.Duration, uint64, int, string) {
	srv, err := serve.New(serve.Config{
		Shards:       mcfg.Shards,
		MaxBatch:     mcfg.Batch,
		Snapshots:    snapshots,
		StalenessOps: k,
		Build:        func(int) *core.Instrumented { return buildMVCC(opt, name, mcfg.Versions) },
	})
	if err != nil {
		return 0, 0, 0, 0, err.Error()
	}
	if err := srv.Preload(stable); err != nil {
		return 0, 0, 0, 0, err.Error()
	}
	if err := srv.Flush(); err != nil {
		return 0, 0, 0, 0, err.Error()
	}

	type tally struct {
		mismatches int
		hist       *obs.Histogram
	}
	tallies := make([]tally, len(streams))
	var wg sync.WaitGroup
	begin := time.Now()
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &streams[c]
			ta := &tallies[c]
			ta.hist = obs.NewLatencyHistogram()
			res := make([]serve.Result, mcfg.Batch)
			var readIdx, writeIdx []int
			flush := func(idxs []int, read bool) {
				if len(idxs) == 0 {
					return
				}
				reqs := make([]serve.Request, len(idxs))
				for j, i := range idxs {
					reqs[j] = st.ops[i]
				}
				t0 := time.Now()
				if err := srv.Do(reqs, res[:len(reqs)]); err != nil {
					ta.mismatches += len(reqs)
					return
				}
				if read {
					ta.hist.RecordDuration(time.Since(t0))
				}
				for j, i := range idxs {
					if res[j] != st.want[i] {
						ta.mismatches++
					}
				}
			}
			for i := range st.ops {
				if st.ops[i].Op == serve.OpGet {
					readIdx = append(readIdx, i)
					if len(readIdx) == mcfg.Batch {
						flush(readIdx, true)
						readIdx = readIdx[:0]
					}
				} else {
					writeIdx = append(writeIdx, i)
					if len(writeIdx) == mcfg.Batch {
						flush(writeIdx, false)
						writeIdx = writeIdx[:0]
					}
				}
			}
			flush(writeIdx, false)
			flush(readIdx, true)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	_, snapReads := srv.ReaderStats()
	_, err = srv.Stop()
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	mismatches, requests := 0, 0
	hist := obs.NewLatencyHistogram()
	for i := range tallies {
		mismatches += tallies[i].mismatches
		hist.Merge(tallies[i].hist)
	}
	for _, st := range streams {
		requests += len(st.ops)
	}
	tp := 0.0
	if s := elapsed.Seconds(); s > 0 {
		tp = float64(requests) / s
	}
	return tp, hist.QuantileDuration(0.99), snapReads, mismatches, errStr
}

// Render prints the deterministic half of the experiment.
func (r MVCCResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MVCC snapshot reads: single-writer/many-reader shards, lock-free readers\n")
	fmt.Fprintf(&b, "%d stable records, %d requests across %d clients; retention %d versions\n",
		r.N, r.Ops, r.Clients, r.Versions)
	fmt.Fprintf(&b, "k = writes between snapshot publishes (1 = read-your-writes)\n\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		verdict := "ok"
		if !row.Verified {
			verdict = fmt.Sprintf("FAIL(%d) %s", r.Ops, row.ServeErr)
		}
		rows = append(rows, []string{
			row.Method,
			row.Mix,
			fmt.Sprintf("%d", row.Staleness),
			fmt.Sprintf("%.2f", row.Clean.R),
			fmt.Sprintf("%.2f", row.Clean.U),
			fmt.Sprintf("%.3f", row.Clean.M),
			fmt.Sprintf("%d", row.Retained),
			fmt.Sprintf("%d", row.Reads),
			verdict,
		})
	}
	b.WriteString(table([]string{"method", "mix", "k", "RO", "UO", "MO", "retainedB", "reads", "served"}, rows))
	b.WriteString("\nRO/UO/MO come from a deterministic sequential replay with the same publish\ncadence (counted in writes); retainedB is the version-retention footprint at\nend of replay — the MO rent snapshot isolation pays. Laxer k (more writes\nper publish) lowers publish traffic but widens staleness; retention appears\nin MO because Size() counts retired-but-unreclaimed pages. \"served ok\"\nmeans every live outcome matched its stable-read prediction and reads were\nactually served off snapshots. Throughput goes to stderr.\n")
	return b.String()
}

// RenderTiming prints the wall-clock half: baseline vs snapshot-path
// throughput and read tail latency. Non-deterministic; never part of stdout.
func (r MVCCResult) RenderTiming() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mvcc wall-clock (non-deterministic; %d shards, %d clients, batch %d):\n",
		r.Shards, r.Clients, r.Batch)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		speedup := 0.0
		if row.BaseThroughput > 0 {
			speedup = row.SnapThroughput / row.BaseThroughput
		}
		rows = append(rows, []string{
			row.Method,
			row.Mix,
			fmt.Sprintf("%d", row.Staleness),
			fmt.Sprintf("%.0f", row.BaseThroughput),
			fmt.Sprintf("%.0f", row.SnapThroughput),
			fmt.Sprintf("%.2fx", speedup),
			row.ReadP99.String(),
			fmt.Sprintf("%d", row.SnapReads),
		})
	}
	b.WriteString(table([]string{"method", "mix", "k", "base req/s", "snap req/s", "speedup", "read p99", "snap reads"}, rows))
	return b.String()
}
