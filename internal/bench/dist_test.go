package bench

import (
	"strings"
	"testing"

	"repro/internal/serve"
)

func TestParseKeyDist(t *testing.T) {
	good := map[string]string{
		"":               "uniform",
		"uniform":        "uniform",
		" uniform ":      "uniform",
		"zipf":           "zipf:0.99",
		"zipf:1.1":       "zipf:1.1",
		"hotspot":        "hotspot:90/10",
		"hotspot:90/10":  "hotspot:90/10",
		"hotspot:0.8/.2": "hotspot:80/20",
	}
	for in, want := range good {
		d, err := ParseKeyDist(in)
		if err != nil {
			t.Errorf("ParseKeyDist(%q): %v", in, err)
			continue
		}
		if d.String() != want {
			t.Errorf("ParseKeyDist(%q).String() = %q, want %q", in, d.String(), want)
		}
		// String form must round-trip.
		d2, err := ParseKeyDist(d.String())
		if err != nil || d2 != d {
			t.Errorf("round trip of %q: got %+v err %v", d.String(), d2, err)
		}
	}
	for _, in := range []string{"latest", "zipf:0", "zipf:9", "zipf:x", "hotspot:90", "hotspot:0/10", "hotspot:90/x"} {
		if _, err := ParseKeyDist(in); err == nil {
			t.Errorf("ParseKeyDist(%q) accepted", in)
		}
	}
}

// rank must be a pure function of its draws with in-range results at the
// u→1 edges, and the skewed kinds must actually skew: zipf front-loads low
// ranks, hotspot puts HotAccess of the mass on the first HotKeys·n ranks.
func TestKeyDistRank(t *testing.T) {
	const n = 1000
	zipf, _ := ParseKeyDist("zipf:1.1")
	hot, _ := ParseKeyDist("hotspot:90/10")
	for _, d := range []KeyDist{UniformDist(), zipf, hot} {
		for _, u := range []float64{0, 0.5, 0.999999, 1 - 1e-16} {
			if i := d.rank(u, u, n); i < 0 || i >= n {
				t.Errorf("%s.rank(%g) = %d out of range", d, u, i)
			}
		}
		if d.rank(0.25, 0.25, n) != d.rank(0.25, 0.25, n) {
			t.Errorf("%s.rank not deterministic", d)
		}
	}
	// Tally mass over an evenly spaced grid of draws.
	const grid = 10000
	zipfLow, hotFront := 0, 0
	for i := 0; i < grid; i++ {
		u := (float64(i) + 0.5) / grid
		u2 := float64((i*7919)%grid) / grid
		if zipf.rank(u, 0, n) < n/100 {
			zipfLow++
		}
		if hot.rank(u, u2, n) < n/10 {
			hotFront++
		}
	}
	// Theoretical mass on the top 1% of ranks for the truncated pareto at
	// θ=1.1, n=1000 is ≈0.43 — far above uniform's 0.01.
	if frac := float64(zipfLow) / grid; frac < 0.35 {
		t.Errorf("zipf:1.1 puts %.2f of mass on the top 1%% of ranks, want ≈0.43", frac)
	}
	if frac := float64(hotFront) / grid; frac < 0.85 || frac > 0.95 {
		t.Errorf("hotspot:90/10 puts %.2f of mass on the hot region, want ~0.90", frac)
	}
}

// A uniform NewStreamGenDist stream and the scan-capable NextOp stream with
// Scan=0 must both reproduce NewStreamGen's byte-exact request/outcome
// sequence — the compatibility contract that keeps every pre-existing
// experiment's stdout stable.
func TestStreamGenDistUniformCompat(t *testing.T) {
	const ops = 3000
	mix := DefaultServeMix()
	base := NewStreamGen(11, 2, mix)
	viaDist := NewStreamGenDist(11, 2, mix, UniformDist())
	viaOp := NewStreamGen(11, 2, mix)
	base.InitRecords(256)
	viaDist.InitRecords(256)
	viaOp.InitRecords(256)
	for i := 0; i < ops; i++ {
		wreq, wwant := base.Next()
		dreq, dwant := viaDist.Next()
		if dreq != wreq || dwant != wwant {
			t.Fatalf("op %d: uniform dist diverged: %+v vs %+v", i, dreq, wreq)
		}
		op := viaOp.NextOp()
		if op.Scan {
			t.Fatalf("op %d: scan generated from a scan-free mix", i)
		}
		if op.Req != wreq || op.Want != wwant {
			t.Fatalf("op %d: NextOp diverged from Next: %+v vs %+v", i, op.Req, wreq)
		}
	}
}

// Skewed streams must shift traffic onto few keys without breaking the
// model: every generated outcome stays correct (spot-checked by replaying
// into a map), and the top-8 get-key share orders uniform < zipf.
func TestStreamGenSkewedStreams(t *testing.T) {
	share := func(dist string) float64 {
		d, err := ParseKeyDist(dist)
		if err != nil {
			t.Fatal(err)
		}
		g := NewStreamGenDist(5, 0, ServeMix{Get: 0.95, Insert: 0.05}, d)
		g.InitRecords(2048)
		counts := map[uint64]int{}
		gets := 0
		for i := 0; i < 8000; i++ {
			req, _ := g.Next()
			if req.Op == serve.OpGet {
				counts[uint64(req.Key)]++
				gets++
			}
		}
		top := make([]int, 0, len(counts))
		for _, c := range counts {
			top = append(top, c)
		}
		// top-8 share
		for i := 0; i < 8 && i < len(top); i++ {
			for j := i + 1; j < len(top); j++ {
				if top[j] > top[i] {
					top[i], top[j] = top[j], top[i]
				}
			}
		}
		sum := 0
		for i := 0; i < 8 && i < len(top); i++ {
			sum += top[i]
		}
		return float64(sum) / float64(gets)
	}
	uni, zipf := share("uniform"), share("zipf:1.2")
	if zipf < 4*uni || zipf < 0.2 {
		t.Errorf("zipf top-8 get share %.3f vs uniform %.3f: not skewed", zipf, uni)
	}
}

// The scan path: renormalized point thresholds keep the realized mix true
// to the requested one (no residual mass leaking into delete), and every
// scan's WantRows matches a replay of the model over [Lo, Hi].
func TestStreamGenScanOps(t *testing.T) {
	mix := ServeMix{Get: 0.50, Insert: 0.05, Update: 0.05, Scan: 0.40, ScanRows: 128, GetMiss: 0.05}
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
	g := NewStreamGen(3, 1, DefaultServeMix())
	g.InitRecords(1024)
	g.SetPhase(mix, UniformDist())
	var scans, deletes, points, rowsSum int
	for i := 0; i < 6000; i++ {
		op := g.NextOp()
		if op.Scan {
			scans++
			rows := 0
			for k := range g.modelKeys() {
				if k >= uint64(op.Lo) && k <= uint64(op.Hi) {
					rows++
				}
			}
			if rows != op.WantRows {
				t.Fatalf("scan %d: WantRows %d, model holds %d in range", scans, op.WantRows, rows)
			}
			rowsSum += rows
			continue
		}
		points++
		if op.Req.Op == serve.OpDelete {
			deletes++
		}
	}
	if frac := float64(scans) / 6000; frac < 0.35 || frac > 0.45 {
		t.Errorf("scan fraction %.3f, want ~0.40", frac)
	}
	if frac := float64(deletes) / 6000; frac > 0.01 {
		t.Errorf("delete fraction %.3f from a delete-free mix (threshold normalization broken)", frac)
	}
	if avg := float64(rowsSum) / float64(scans); avg < 64 || avg > 256 {
		t.Errorf("mean scan rows %.0f, want near target 128", avg)
	}
}

// modelKeys exposes the model's key set for test replay.
func (g *StreamGen) modelKeys() map[uint64]bool {
	m := make(map[uint64]bool, len(g.model))
	for k := range g.model {
		m[uint64(k)] = true
	}
	return m
}

func TestServeMixScanParsing(t *testing.T) {
	m, err := ParseServeMix("get=0.5,insert=0.05,update=0.05,delete=0,scan=0.4,scanrows=512,getmiss=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if m.Scan != 0.4 || m.ScanRows != 512 {
		t.Fatalf("parsed %+v", m)
	}
	if !strings.Contains(m.String(), "scan=0.4") || !strings.Contains(m.String(), "scanrows=512") {
		t.Errorf("String() drops scan fields: %s", m.String())
	}
	if _, err := ParseServeMix("get=0.5,scan=0.4"); err == nil {
		t.Error("accepted a mix summing past 1")
	}
	if _, err := ParseServeMix("scan=-0.1"); err == nil {
		t.Error("accepted a negative scan fraction")
	}
}
