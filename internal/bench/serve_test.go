package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func quickServeCfg() Config {
	return Config{Seed: 42, N: 2048, Ops: 1000}
}

// The stdout contract: every Render column is independent of shard count,
// batch size, and runner width. Vary all three and diff the rendering.
func TestServeRenderDeterministicAcrossShards(t *testing.T) {
	a := RunServe(quickServeCfg(), ServeConfig{Shards: 1, Clients: 4, Batch: 16})
	b := RunServe(quickServeCfg(), ServeConfig{Shards: 8, Clients: 4, Batch: 64})
	wide := quickServeCfg()
	wide.Runner = NewRunner(4)
	c := RunServe(wide, ServeConfig{Shards: 3, Clients: 4, Batch: 32})
	if a.Render() != b.Render() {
		t.Errorf("Render differs between shards=1 and shards=8:\n--- shards=1\n%s--- shards=8\n%s", a.Render(), b.Render())
	}
	if a.Render() != c.Render() {
		t.Errorf("Render differs between sequential and 4-worker runner:\n--- seq\n%s--- wide\n%s", a.Render(), c.Render())
	}
	for _, row := range a.Rows {
		if !row.Verified {
			t.Errorf("%s: serving run not verified (%d mismatches, err %q)", row.Method, row.Mismatches, row.ServeErr)
		}
		if row.Clean.R <= 0 || row.Clean.M < 1 {
			t.Errorf("%s: implausible clean point %+v", row.Method, row.Clean)
		}
	}
	if !strings.Contains(a.Render(), "served") || strings.Contains(a.Render(), "FAIL") {
		t.Errorf("unexpected render:\n%s", a.Render())
	}
}

// Client streams must be conflict-free (disjoint key namespaces) and
// reproducible from the seed alone.
func TestServeStreamsConflictFreeAndReproducible(t *testing.T) {
	s1 := makeServeStreams(7, 1024, 2000, 4)
	s2 := makeServeStreams(7, 1024, 2000, 4)
	owner := make(map[core.Key]int)
	for c, st := range s1 {
		if len(st.ops) != len(s2[c].ops) || len(st.init) != len(s2[c].init) {
			t.Fatalf("client %d: streams not reproducible", c)
		}
		for i := range st.ops {
			if st.ops[i] != s2[c].ops[i] || st.want[i] != s2[c].want[i] {
				t.Fatalf("client %d op %d: streams not reproducible", c, i)
			}
		}
		touch := func(k core.Key) {
			if prev, ok := owner[k]; ok && prev != c {
				t.Fatalf("key %#x touched by clients %d and %d", k, prev, c)
			}
			owner[k] = c
		}
		for _, r := range st.init {
			touch(r.Key)
		}
		for _, op := range st.ops {
			touch(op.Key)
		}
	}
}

// The timing half must stay out of stdout; sanity-check it renders and is
// explicitly marked non-deterministic.
func TestServeRenderTiming(t *testing.T) {
	r := RunServe(quickServeCfg(), ServeConfig{Shards: 2, Clients: 2, Batch: 32})
	timing := r.RenderTiming()
	if !strings.Contains(timing, "non-deterministic") || !strings.Contains(timing, "req/s") {
		t.Errorf("unexpected timing render:\n%s", timing)
	}
	if strings.Contains(r.Render(), "shards=") {
		t.Errorf("stdout render leaks shard count:\n%s", r.Render())
	}
}
