package bench

import (
	"fmt"
	"strings"

	"repro/internal/rum"
)

// NamedPoint labels a RUM point for triangle rendering. When W is non-nil
// the point is plotted at those barycentric weights (used for the
// cohort-relative placement of Figure 1); otherwise the absolute
// amplification projection of the Point is used.
type NamedPoint struct {
	Label string
	Point rum.Point
	W     *rum.Weights
	// Marker, when nonzero, forces the plot character; several points may
	// share one (e.g. every configuration of a Figure-3 family).
	Marker byte
}

func (p NamedPoint) xy() (float64, float64) {
	if p.W != nil {
		return p.W.XY()
	}
	return p.Point.TriangleXY()
}

// RenderTriangle draws the RUM triangle of Figures 1 and 3 in ASCII:
// Read-optimized at the top, Write-optimized bottom-left, Space-optimized
// bottom-right. Each point is plotted with a single marker character (the
// first rune of its label is used when unique, otherwise letters a, b, …)
// and listed in the legend with its measured amplifications.
func RenderTriangle(points []NamedPoint, width int) string {
	if width < 21 {
		width = 61
	}
	if width%2 == 0 {
		width++
	}
	height := width/2 + 1
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}

	// Triangle edges: apex (0.5, 1), base corners (0, 0) and (1, 0).
	set := func(x, y float64, c byte) {
		col := int(x * float64(width-1))
		row := int((1 - y) * float64(height-1))
		if row < 0 || row >= height || col < 0 || col >= width {
			return
		}
		grid[row][col] = c
	}
	steps := width * 2
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		set(0.5*t, t, '/')    // left edge (0,0) → (0.5,1)
		set(1-0.5*t, t, '\\') // right edge (1,0) → (0.5,1)
		set(t, 0, '_')        // base
	}

	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	markers := make([]byte, len(points))
	used := map[byte]bool{'/': true, '\\': true, '_': true, ' ': true}
	next := 0
	for i, p := range points {
		var m byte
		if p.Marker != 0 {
			markers[i] = p.Marker
			x, y := p.xy()
			set(x, y, p.Marker)
			continue
		}
		if len(p.Label) > 0 && !used[p.Label[0]] {
			m = p.Label[0]
		} else {
			for next < len(alphabet) && used[alphabet[next]] {
				next++
			}
			if next < len(alphabet) {
				m = alphabet[next]
			} else {
				m = '*' // alphabet exhausted: share a marker
			}
		}
		if m != '*' {
			used[m] = true
		}
		markers[i] = m
		x, y := p.xy()
		set(x, y, m)
	}

	var b strings.Builder
	b.WriteString(strings.Repeat(" ", width/2-5) + "Read Optimized\n")
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("Write Optimized" + strings.Repeat(" ", width-30) + "Space Optimized\n\n")
	seen := map[byte]bool{}
	for i, p := range points {
		if p.Marker != 0 {
			// Forced markers group many points; legend the marker once.
			if seen[p.Marker] {
				continue
			}
			seen[p.Marker] = true
			fmt.Fprintf(&b, "  %c = %s\n", markers[i], p.Label)
			continue
		}
		if p.W != nil {
			// Relative placement: the corner label comes from the cohort
			// weights, matching the plotted position.
			fmt.Fprintf(&b, "  %c = %-22s %s\n", markers[i], p.Label, p.Point)
			continue
		}
		fmt.Fprintf(&b, "  %c = %-22s %s (%s)\n", markers[i], p.Label, p.Point, p.Point.Classify())
	}
	return b.String()
}
