package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rum"
)

// Runner schedules independent run cells — one (experiment, method, config)
// point each — onto a bounded worker pool. Every cell owns a fully isolated
// storage stack (Device, BufferPool, meters, observer), so cells are safe to
// execute concurrently even though the stacks themselves are single-owner;
// results are merged back in enumeration order, which makes every rendered
// table, trace, and time series byte-identical regardless of worker count.
//
// A nil *Runner (or one worker) executes cells inline in enumeration order,
// preserving fully sequential behaviour; the merge path is identical either
// way. One Runner may be shared by several experiments running concurrently:
// the pool bound is global, the per-experiment merge is not.
type Runner struct {
	workers int
	sem     chan struct{}

	cells  atomic.Uint64
	failed atomic.Uint64
	// grand accumulates the traced meters of every observed cell. Cells
	// complete on worker goroutines, so this is the AtomicMeter drain pattern:
	// per-cell plain Meters merged concurrently into one shared AtomicMeter.
	grand rum.AtomicMeter
}

// NewRunner creates a pool of the given width; workers <= 0 selects
// GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the pool width; a nil runner reports 1 (sequential).
func (r *Runner) Workers() int {
	if r == nil {
		return 1
	}
	return r.workers
}

// RunnerStats summarizes a runner's lifetime activity.
type RunnerStats struct {
	Cells  uint64 // cells executed (including failed ones)
	Failed uint64 // cells that panicked
	// Traced is the sum of every observed cell's traced meter — the suite's
	// grand total of attributed physical and logical traffic. Zero when the
	// suite ran without an observer.
	Traced rum.Meter
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() RunnerStats {
	if r == nil {
		return RunnerStats{}
	}
	return RunnerStats{Cells: r.cells.Load(), Failed: r.failed.Load(), Traced: r.grand.Snapshot()}
}

// CellError reports one run cell that panicked. The experiment it belongs to
// keeps running its other cells; the failure surfaces once all of them have
// finished.
type CellError struct {
	Exp   string // experiment name
	Label string // cell label within the experiment
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery (for stderr, not stable output)
}

// Error formats the failed cell without the stack (stacks differ run to run;
// callers print them separately when wanted).
func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s/%s: %v", e.Exp, e.Label, e.Value)
}

// SuiteError aggregates every failed cell of one experiment.
type SuiteError struct {
	Exp   string
	Cells []*CellError
}

// Error lists the failed cells in enumeration order.
func (e *SuiteError) Error() string {
	s := fmt.Sprintf("%s: %d cell(s) failed:", e.Exp, len(e.Cells))
	for _, c := range e.Cells {
		s += "\n  " + c.Error()
	}
	return s
}

// Map runs fn(0..n-1) on the pool, recovering a panic in any index into a
// CellError, and returns the per-index errors (nil entries for clean cells).
// With a nil runner or a single worker the calls run inline, in order, on the
// caller's goroutine — byte-for-byte the sequential behaviour.
func (r *Runner) Map(n int, fn func(i int)) []*CellError {
	errs := make([]*CellError, n)
	runOne := func(i int) {
		if r != nil {
			r.cells.Add(1)
		}
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &CellError{Value: v, Stack: debug.Stack()}
				if r != nil {
					r.failed.Add(1)
				}
			}
		}()
		fn(i)
	}
	if r == nil || r.workers == 1 {
		for i := 0; i < n; i++ {
			runOne(i)
		}
		return errs
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			runOne(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// MergeTraced drains one cell's measured meter into the suite-wide
// AtomicMeter. Safe to call concurrently from worker goroutines.
func (r *Runner) MergeTraced(m rum.Meter) {
	if r != nil {
		r.grand.Merge(m)
	}
}

// Cell is one independent unit of experiment work: an isolated build-and-
// measure closure identified by a label for failure reporting.
type Cell struct {
	Label string
	Run   func(cfg Config)
}

// runCells executes an experiment's cells on the configured Runner. Each cell
// receives a private Config copy: when the experiment is observed, the copy
// carries a fresh child Observer (also wired as the storage hook) so the
// cell's structures trace into isolated state. After every cell has finished,
// child observers are finished and absorbed into the experiment's observer in
// enumeration order — the step that makes exported traces independent of
// worker count. If any cell panicked, runCells panics with a *SuiteError
// naming every failed cell (after all cells have run and clean cells have
// been merged).
func (c Config) runCells(exp string, cells []Cell) {
	children := make([]*obs.Observer, len(cells))
	errs := c.Runner.Map(len(cells), func(i int) {
		ccfg := c
		if c.Obs != nil {
			child := c.Obs.Child()
			children[i] = child
			ccfg.Obs = child
			ccfg.Storage.Hook = child
		}
		cells[i].Run(ccfg)
		if child := children[i]; child != nil {
			child.Finish()
			c.Runner.MergeTraced(child.TracedMeter())
		}
	})
	var failed []*CellError
	for i := range cells {
		if e := errs[i]; e != nil {
			e.Exp, e.Label = exp, cells[i].Label
			failed = append(failed, e)
			continue
		}
		if child := children[i]; child != nil {
			c.Obs.Absorb(child)
		}
	}
	if len(failed) > 0 {
		panic(&SuiteError{Exp: exp, Cells: failed})
	}
}

// recordKey memoizes makeRecords: the quick and full suites ask for the same
// (seed, n) dataset from many cells (every Table-1 method at one N, plus any
// experiment sharing cfg.N), and generation — rejection-sampled uniqueness
// plus a sort — dwarfs a memcpy.
type recordKey struct {
	seed int64
	n    int
}

type recordEntry struct {
	once sync.Once
	recs []core.Record
}

// recordCache holds one immutable canonical slice per (seed, n). It grows
// with the set of distinct datasets a process requests, which for the bench
// binaries is a handful; entries are never evicted.
var recordCache sync.Map // recordKey → *recordEntry
