package bench

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lsm"
	"repro/internal/rum"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The walsweep experiment prices durability: the same write-heavy workload
// against write-ahead-logged structures (internal/wal), sweeping the
// group-commit batch. Batch 1 syncs every mutation — the strictest contract
// at the steepest update-overhead tax; larger batches amortize one log
// append over the whole group. Each cell is measured two ways:
//
//   - clean: cost-unit throughput (operations per 1000 medium-weighted cost
//     units — deterministic, unlike wall-clock) and the per-op cost
//     distribution (p50/p99/max), plus the log's own ledger: syncs,
//     commits, checkpoints, appended pages and bytes;
//   - faulted: seeded crash trials (faults.CheckCrash) holding the logged
//     structure to DurableToCommit — every record the log reported
//     committed must be served back after recovery from the torn image.
//
// The sweep makes the RUM trade concrete: syncs fall roughly as 1/batch and
// throughput recovers accordingly, while the crash trials pin the
// contract — group commit cheapens durability without weakening it. What
// moves instead is the un-committed tail: at batch B, up to B-1 acknowledged
// records may be lost to a crash, which is exactly what the checker's
// committed watermark (not its acked count) licenses.

// walsweepBatches is the group-commit sweep, batch 1 first: later rows
// render their throughput as a multiple of the sync-every-op baseline.
var walsweepBatches = []int{1, 4, 8, 32, 128}

const (
	// walsweepCheckpointEvery bounds the overlay between checkpoints; small
	// enough that every cell exercises segment recycling inside its op
	// budget, large enough that checkpoints stay rare next to commits.
	walsweepCheckpointEvery = 1024
	// walsweepTrials is the seeded crash-trial count per cell.
	walsweepTrials = 6
)

// walSubject is one loggable structure: how to build and recover it under a
// given log config.
type walSubject struct {
	name   string
	build  func(pool *storage.BufferPool, wcfg wal.Config) (*wal.Logged, error)
	reopen func(pool *storage.BufferPool, wcfg wal.Config) (*wal.Logged, error)
}

func walSubjects() []walSubject {
	lsmCfg := lsm.Config{MemtableRecords: 1024, SizeRatio: 10}
	return []walSubject{
		{
			name: "btree",
			build: func(p *storage.BufferPool, w wal.Config) (*wal.Logged, error) {
				return wal.NewBTree(p, btree.Config{}, w)
			},
			reopen: func(p *storage.BufferPool, w wal.Config) (*wal.Logged, error) {
				return wal.RecoverBTree(p, btree.Config{}, w)
			},
		},
		{
			name: "lsm",
			build: func(p *storage.BufferPool, w wal.Config) (*wal.Logged, error) {
				return wal.NewLSM(p, lsmCfg, w)
			},
			reopen: func(p *storage.BufferPool, w wal.Config) (*wal.Logged, error) {
				return wal.RecoverLSM(p, lsmCfg, w)
			},
		},
	}
}

// WALRow is one (structure, commit batch) cell.
type WALRow struct {
	Method string
	Batch  int
	// Point is the measured phase's RUM point; its U column carries the
	// log's write-amplification tax.
	Point rum.Point
	// OpsPerKCost is operations per 1000 medium-weighted device cost units
	// over the measured phase — the deterministic throughput stand-in.
	OpsPerKCost float64
	// CostP50/P99/Max is the per-op device cost distribution: the shape of
	// the sync tax (paid per op at batch 1, concentrated into spikes at
	// larger batches).
	CostP50, CostP99, CostMax uint64
	// The log's own measured-phase ledger.
	Syncs, Commits, Checkpoints, LogPages, LogBytes uint64
	// Crash-trial tallies under faults.DurableToCommit.
	Trials, Crashed, Recovered, Loud, Violated int
}

// WALSweepResult is the rendered walsweep experiment.
type WALSweepResult struct {
	Ops  int
	Rows []WALRow
}

// RunWALSweep measures every (structure, batch) cell.
func RunWALSweep(cfg Config) WALSweepResult {
	cfg.Defaults()
	if cfg.Storage.PoolPages == 0 {
		cfg.Storage.PoolPages = 8 // small pool, or the buffer cache hides the device
	}
	// The sweep runs on flash: the SSD's 5:1 write:read cost asymmetry (§2)
	// is what makes the sync tax — one page write per commit — visible
	// against the structure's own traffic. RAM's symmetric costs mute it.
	cfg.Storage.Medium = storage.SSD
	subjects := walSubjects()
	rows := make([]WALRow, len(subjects)*len(walsweepBatches))
	cells := make([]Cell, 0, len(rows))
	for si, sub := range subjects {
		for bi, batch := range walsweepBatches {
			idx, sub, batch := si*len(walsweepBatches)+bi, sub, batch
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/b=%d", sub.name, batch),
				Run:   func(ccfg Config) { rows[idx] = runWALCell(ccfg, sub, batch) },
			})
		}
	}
	cfg.runCells("walsweep", cells)
	return WALSweepResult{Ops: cfg.Ops, Rows: rows}
}

func runWALCell(cfg Config, sub walSubject, batch int) WALRow {
	wcfg := wal.Config{CommitBatch: batch, CheckpointEvery: walsweepCheckpointEvery}
	row := WALRow{Method: sub.name, Batch: batch}

	dev := storage.NewDevice(pageSize(cfg), cfg.Storage.Medium, nil)
	pool := storage.NewBufferPool(dev, poolPages(cfg))
	if cfg.Storage.Hook != nil {
		dev.SetHook(cfg.Storage.Hook)
		pool.SetHook(cfg.Storage.Hook)
	}
	lg, err := sub.build(pool, wcfg)
	if err != nil {
		panic(fmt.Sprintf("walsweep: build %s: %v", sub.name, err))
	}
	am := core.Instrument(lg)
	cfg.observe(am, fmt.Sprintf("wal/%s/b=%d", sub.name, batch))

	gen := workload.New(workload.Config{
		Seed:       cfg.Seed,
		Mix:        workload.WriteHeavy, // the log taxes writes; measure where it hurts
		InitialLen: cfg.N,
	})
	if err := core.Preload(am, gen); err != nil {
		panic(fmt.Sprintf("walsweep: preload %s: %v", sub.name, err))
	}
	am.Flush()

	start := am.Meter().Snapshot()
	before := lg.Stats()
	costBefore := dev.Stats().CostUnits
	costs := make([]uint64, cfg.Ops)
	flushEvery := cfg.Ops / 8
	prev := costBefore
	var st core.OpStats
	for i := 0; i < cfg.Ops; i++ {
		core.Apply(am, gen.Next(), &st)
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			am.Flush() // periodic checkpoint: its burst lands in this op's cost
		}
		now := dev.Stats().CostUnits
		costs[i] = now - prev
		prev = now
	}
	row.Point = rum.PointOf(am.Meter().Diff(start), am.Size())
	if total := dev.Stats().CostUnits - costBefore; total > 0 {
		row.OpsPerKCost = float64(cfg.Ops) * 1000 / float64(total)
	}
	cfg.Perf.Record("walsweep", fmt.Sprintf("%s/b=%d", sub.name, batch), row.OpsPerKCost)
	slices.Sort(costs)
	quantile := func(q float64) uint64 { return costs[int(q*float64(len(costs)-1))] }
	row.CostP50, row.CostP99, row.CostMax = quantile(0.50), quantile(0.99), costs[len(costs)-1]
	after := lg.Stats()
	row.Syncs = after.Syncs - before.Syncs
	row.Commits = after.Commits - before.Commits
	row.Checkpoints = after.Checkpoints - before.Checkpoints
	row.LogPages = after.LogPagesWritten - before.LogPagesWritten
	row.LogBytes = after.LogBytesWritten - before.LogBytesWritten

	// Faulted phase: seeded crash trials against the DurableToCommit
	// contract, on the checker's own small substrate.
	for t := 0; t < walsweepTrials; t++ {
		res := faults.CheckCrash(faults.CheckConfig{Seed: uint64(cfg.Seed) + uint64(t)}, faults.Subject{
			Open: func(p *storage.BufferPool) (core.AccessMethod, error) {
				return sub.build(p, wcfg)
			},
			Reopen: func(p *storage.BufferPool) (core.AccessMethod, error) {
				return sub.reopen(p, wcfg)
			},
			Durability: faults.DurableToCommit,
		})
		row.Trials++
		switch res.Verdict {
		case faults.Recovered:
			row.Crashed++
			row.Recovered++
		case faults.FailedLoudly:
			row.Crashed++
			row.Loud++
		case faults.Violated:
			row.Crashed++
			row.Violated++
		}
	}
	return row
}

// Render prints the sweep table plus one crash-trial line per cell.
func (r WALSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WAL sweep: group-commit batch vs. the durability tax\n")
	fmt.Fprintf(&b, "write-ahead-logged structures on SSD (read 4, write 20 per page), write-heavy\n")
	fmt.Fprintf(&b, "mix, %d measured ops; every mutation is framed into the log before it is\n", r.Ops)
	fmt.Fprintf(&b, "acknowledged; checkpoint every %d overlay records; ops/kcost = ops per 1000\n", walsweepCheckpointEvery)
	fmt.Fprintf(&b, "medium-weighted cost units\n\n")
	base := map[string]float64{}
	for _, row := range r.Rows {
		if row.Batch == 1 {
			base[row.Method] = row.OpsPerKCost
		}
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		speedup := "-"
		if b1 := base[row.Method]; b1 > 0 {
			speedup = fmt.Sprintf("%.2fx", row.OpsPerKCost/b1)
		}
		rows = append(rows, []string{
			row.Method,
			fmt.Sprintf("%d", row.Batch),
			fmt.Sprintf("%.1f", row.OpsPerKCost),
			speedup,
			fmt.Sprintf("%d", row.CostP50),
			fmt.Sprintf("%d", row.CostP99),
			fmt.Sprintf("%d", row.CostMax),
			fmt.Sprintf("%d", row.Syncs),
			fmt.Sprintf("%d", row.Commits),
			fmt.Sprintf("%d", row.Checkpoints),
			fmt.Sprintf("%d", row.LogPages),
			fmtBytes(float64(row.LogBytes)),
			fmt.Sprintf("%.2f", row.Point.U),
		})
	}
	b.WriteString(table(
		[]string{"method", "batch", "ops/kcost", "vs-b1", "cost-p50", "p99", "max", "syncs", "commits", "ckpts", "log-pages", "log-bytes", "UO"},
		rows,
	))
	b.WriteString("\nCrash trials (durable-to-commit: every committed record must survive reopen):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-5s b=%-3d  %d trials: %d crashed, %d recovered, %d failed-loudly, %d violated\n",
			row.Method, row.Batch, row.Trials, row.Crashed, row.Recovered, row.Loud, row.Violated)
	}
	b.WriteString("\nSyncs fall roughly as 1/batch and cost-unit throughput recovers accordingly,\nwhile the crash trials hold every cell to the same contract: group commit\ncheapens durability without weakening it. What grows instead is the\nacknowledged-but-uncommitted tail a crash may lose — up to batch-1 records,\nexactly what the committed watermark (not the acked count) licenses. At\nbatch=1 the p50 IS the sync: every op pays the log append; large batches\npush the same traffic into the tail as rare commit and checkpoint spikes.\n")
	return b.String()
}
