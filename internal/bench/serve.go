package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/methods"
	"repro/internal/obs"
	"repro/internal/rum"
	"repro/internal/serve"
)

// The serve experiment is the Section-5 outlook made operational: instead of
// replaying a workload against one single-goroutine structure, the same
// access methods go behind the sharded serving layer (internal/serve) and
// take traffic from concurrent clients. The claim under test is the RUM
// separation of concerns: amplification (RO/UO/MO) is a per-operation
// property of the access method, so it must not move when the serving layer
// scales out — sharding buys throughput, not a different RUM point.
//
// Determinism contract. Client streams are conflict-free: each client owns a
// namespaced key range, targets only its own keys, and the server preserves
// per-client submission order, so every request's outcome is computable at
// generation time, before anything runs. stdout reports only facts that are
// independent of shard count, client scheduling, batch size, and worker
// width: the clean RUM point (measured by a deterministic single-instance
// replay of the identical request streams), request/hit/record counts, and
// the outcome-verification verdict of the live serving run. Wall-clock facts
// — throughput, p50/p99 latency, shard balance, the serving run's physical
// traffic (scheduling-dependent through the buffer pool) — go to stderr via
// RenderTiming.

// serveMethods is the serving cast: the three page-backed Table-1 methods
// plus one in-memory structure, each sharded N ways.
var serveMethods = []string{"btree", "hash", "lsm-level", "skiplist"}

// ServeConfig sizes the serving layer of the experiment.
type ServeConfig struct {
	// Shards is the number of keyspace partitions (default 4).
	Shards int
	// Clients is the number of concurrent client goroutines (default 8).
	Clients int
	// Batch is the number of requests a client groups into one Do call
	// (default 64).
	Batch int
}

func (c *ServeConfig) defaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
}

// serveStream is one client's pregenerated, conflict-free request stream:
// the records it preloads, the requests it will submit, and — because the
// keyspace is private and order is preserved — the exact expected outcome of
// every request.
type serveStream struct {
	init     []core.Record
	ops      []serve.Request
	want     []serve.Result
	hits     int // expected successful gets
	finalLen int // records this client leaves live at the end
}

// serveStreamSalt separates the serve experiment's PCG streams from every
// other consumer of the seed (the convention internal/faults established).
const serveStreamSalt = 0x5e7e

// serveMix is the serving workload: point-op heavy, no range scans (a
// broadcast scan's row count would depend on other clients' progress, which
// is exactly the nondeterminism the stdout contract excludes).
const (
	serveFracGet    = 0.50
	serveFracInsert = 0.20
	serveFracUpdate = 0.15
	serveGetMiss    = 0.10 // fraction of gets that target an absent key
)

// makeServeStreams generates one conflict-free stream per client: client c
// draws from its own PCG stream and owns the keys tagged c+1 in the high
// bits, so no two clients ever touch the same key and every outcome is
// decided by the client's own program order. The per-op generation lives in
// the exported StreamGen (workload.go), which cmd/rumserve drives
// open-endedly; this wrapper pregenerates a fixed-length slice of it.
func makeServeStreams(seed int64, n, ops, clients int) []serveStream {
	streams := make([]serveStream, clients)
	for c := range streams {
		streams[c] = makeServeStream(seed, c, n/clients, ops/clients)
	}
	return streams
}

func makeServeStream(seed int64, client, nInit, nOps int) serveStream {
	g := NewStreamGen(seed, client, DefaultServeMix())
	st := serveStream{init: g.InitRecords(nInit)}
	st.ops = make([]serve.Request, 0, nOps)
	st.want = make([]serve.Result, 0, nOps)
	for i := 0; i < nOps; i++ {
		req, want := g.Next()
		st.ops = append(st.ops, req)
		st.want = append(st.want, want)
		if req.Op == serve.OpGet && want.OK {
			st.hits++
		}
	}
	st.finalLen = g.Live()
	return st
}

// mergeInit concatenates and sorts every client's preload records — the
// bulk-load input for both the clean replay and the sharded server.
func mergeInit(streams []serveStream) []core.Record {
	var all []core.Record
	for _, st := range streams {
		all = append(all, st.init...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	return all
}

// ServeRow is one method's measurements.
type ServeRow struct {
	Method string

	// Deterministic (stdout).
	Clean      rum.Point // single-instance replay of the same streams
	Requests   int
	Hits       int // expected == measured get hits
	FinalLen   int
	Verified   bool // every serving-run outcome matched its prediction
	Mismatches int
	ServeErr   string // serving-layer failure, "" when clean

	// Wall-clock (stderr).
	Elapsed    time.Duration
	Throughput float64 // requests per second over the serving phase
	P50, P99   time.Duration
	// Lifecycle decomposition of the serving run (request tracing): how long
	// ops waited in shard mailboxes versus how long they executed. Zero when
	// the run was untraced.
	QueueP50, QueueP99     time.Duration
	ServiceP50, ServiceP99 time.Duration
	ShardOps               []uint64
	ServeMeter             rum.Meter // merged per-shard meters (physical side is scheduling-dependent)
}

// ServeResult is the rendered serve experiment.
type ServeResult struct {
	N, Ops, Clients int
	Shards, Batch   int
	Rows            []ServeRow
}

// RunServe profiles every serving subject twice over identical pregenerated
// client streams: a deterministic single-instance replay for the clean RUM
// point, and a live run behind the sharded serving layer for throughput and
// latency, with every live outcome verified against its prediction.
func RunServe(cfg Config, scfg ServeConfig) ServeResult {
	cfg.Defaults()
	scfg.defaults()
	if cfg.Storage.PoolPages == 0 {
		// Same honesty rule as Figure 1: MEM small relative to N, or the
		// pool hides the device and every method looks read-optimal.
		cfg.Storage.PoolPages = 8
	}
	streams := makeServeStreams(cfg.Seed, cfg.N, cfg.Ops, scfg.Clients)
	allInit := mergeInit(streams)

	res := ServeResult{N: len(allInit), Clients: scfg.Clients, Shards: scfg.Shards, Batch: scfg.Batch}
	for _, st := range streams {
		res.Ops += len(st.ops)
	}
	rows := make([]ServeRow, len(serveMethods))
	cells := make([]Cell, 0, 2*len(serveMethods))
	for i, name := range serveMethods {
		i, name := i, name
		cells = append(cells, Cell{
			Label: name + "/clean",
			Run: func(ccfg Config) {
				runServeClean(ccfg, name, streams, allInit, &rows[i])
			},
		})
		cells = append(cells, Cell{
			Label: name + "/serve",
			Run: func(ccfg Config) {
				runServeServing(ccfg, scfg, name, streams, allInit, &rows[i])
			},
		})
	}
	cfg.runCells("serve", cells)
	res.Rows = rows
	return res
}

// runServeClean replays every client's stream, in client order, against one
// instance of the method — the canonical sequential execution. The measured
// RUM point is the experiment's deterministic truth: it cannot depend on
// shards, clients, batches, or scheduling because none of those exist here.
func runServeClean(cfg Config, name string, streams []serveStream, allInit []core.Record, row *ServeRow) {
	spec, err := methods.Lookup(cfg.Storage, name)
	if err != nil {
		panic(fmt.Sprintf("serve: %s: %v", name, err))
	}
	am := spec.New()
	cfg.observe(am, name+"/clean")
	if err := am.BulkLoad(allInit); err != nil {
		panic(fmt.Sprintf("serve: %s: preload: %v", name, err))
	}
	am.Flush()
	start := am.Meter().Snapshot()
	requests, hits, finalLen := 0, 0, 0
	for _, st := range streams {
		for i := range st.ops {
			req, want := st.ops[i], st.want[i]
			var got serve.Result
			switch req.Op {
			case serve.OpGet:
				got.Value, got.OK = am.Get(req.Key)
			case serve.OpInsert:
				got.OK = am.Insert(req.Key, req.Value) == nil
			case serve.OpUpdate:
				got.OK = am.Update(req.Key, req.Value)
			case serve.OpDelete:
				got.OK = am.Delete(req.Key)
			}
			if got != want {
				panic(fmt.Sprintf("serve: %s: clean replay diverged on %+v: got %+v, want %+v", name, req, got, want))
			}
			if req.Op == serve.OpGet && got.OK {
				hits++
			}
		}
		requests += len(st.ops)
		finalLen += st.finalLen
	}
	am.Flush()
	row.Method = name
	row.Clean = rum.PointOf(am.Meter().Diff(start), am.Size())
	row.Requests = requests
	row.Hits = hits
	row.FinalLen = finalLen
	if got := am.Len(); got != finalLen {
		panic(fmt.Sprintf("serve: %s: clean replay left %d records, streams predict %d", name, got, finalLen))
	}
}

// runServeServing runs the live phase: the method sharded scfg.Shards ways
// behind serve.Server, scfg.Clients concurrent clients submitting their
// streams in scfg.Batch-sized Do calls. Outcomes are compared against the
// pregenerated predictions; timing and latency are recorded per client and
// merged (obs.Histogram.Merge) for the stderr report.
func runServeServing(cfg Config, scfg ServeConfig, name string, streams []serveStream, allInit []core.Record, row *ServeRow) {
	// The serving run is intentionally untraced: its physical traffic is
	// scheduling-dependent (pool state interleaves across clients), which
	// must never leak into the deterministic trace/timeseries/metrics
	// artifacts. The clean replay cell carries the observability.
	sopt := cfg.Storage
	sopt.Hook = nil
	sopt.Faults = faults.Plan{}
	spec, err := methods.Lookup(sopt, name)
	if err != nil {
		panic(fmt.Sprintf("serve: %s: %v", name, err))
	}
	srv, err := serve.New(serve.Config{
		Shards:   scfg.Shards,
		MaxBatch: scfg.Batch,
		Build:    func(int) *core.Instrumented { return spec.New() },
		// Lifecycle tracing is wall-clock-only output (stderr), so unlike the
		// storage hook it cannot leak scheduling into the stdout contract.
		Trace: &serve.TraceConfig{},
	})
	if err != nil {
		panic(fmt.Sprintf("serve: %s: %v", name, err))
	}
	if err := srv.Preload(allInit); err != nil {
		panic(fmt.Sprintf("serve: %s: preload: %v", name, err))
	}

	type clientTally struct {
		mismatches int
		hist       *obs.Histogram
	}
	tallies := make([]clientTally, len(streams))
	var wg sync.WaitGroup
	begin := time.Now()
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &streams[c]
			tally := &tallies[c]
			tally.hist = obs.NewLatencyHistogram()
			res := make([]serve.Result, scfg.Batch)
			for off := 0; off < len(st.ops); off += scfg.Batch {
				end := off + scfg.Batch
				if end > len(st.ops) {
					end = len(st.ops)
				}
				chunk := st.ops[off:end]
				t0 := time.Now()
				if err := srv.Do(chunk, res[:len(chunk)]); err != nil {
					tally.mismatches += len(chunk)
					continue
				}
				tally.hist.RecordDuration(time.Since(t0))
				for i := range chunk {
					if res[i] != st.want[off+i] {
						tally.mismatches++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if err := srv.Flush(); err != nil {
		panic(fmt.Sprintf("serve: %s: flush: %v", name, err))
	}
	elapsed := time.Since(begin)
	reports, err := srv.Stop()
	if err != nil {
		row.ServeErr = err.Error()
	}
	meter, _, n := serve.Aggregate(reports)

	latency := obs.NewLatencyHistogram()
	mismatches := 0
	for _, t := range tallies {
		mismatches += t.mismatches
		latency.Merge(t.hist)
	}
	requests := 0
	for _, st := range streams {
		requests += len(st.ops)
	}
	wantLen := 0
	for _, st := range streams {
		wantLen += st.finalLen
	}
	row.Mismatches = mismatches
	row.Verified = mismatches == 0 && row.ServeErr == "" && n == wantLen &&
		meter.LogicalWritten == uint64(len(allInit)+countWrites(streams))*core.RecordSize
	row.Elapsed = elapsed
	if s := elapsed.Seconds(); s > 0 {
		row.Throughput = float64(requests) / s
	}
	row.P50 = latency.QuantileDuration(0.50)
	row.P99 = latency.QuantileDuration(0.99)
	if ph := serve.AggregatePhases(reports); ph != nil {
		row.QueueP50 = ph.Queue.QuantileDuration(0.50)
		row.QueueP99 = ph.Queue.QuantileDuration(0.99)
		row.ServiceP50 = ph.Service.QuantileDuration(0.50)
		row.ServiceP99 = ph.Service.QuantileDuration(0.99)
	}
	row.ShardOps = make([]uint64, len(reports))
	for i, r := range reports {
		row.ShardOps[i] = r.Ops
	}
	row.ServeMeter = meter
}

// countWrites returns the number of requests that account a logical write
// (insert/update/delete) across all streams — the exact-conservation check
// for the merged per-shard meters.
func countWrites(streams []serveStream) int {
	n := 0
	for _, st := range streams {
		for _, op := range st.ops {
			if op.Op != serve.OpGet {
				n++
			}
		}
	}
	return n
}

// Render prints the deterministic half of the experiment. Every column is
// independent of shard count, batch size, and scheduling by construction;
// the serve-smoke CI gate diffs this output across shard counts and pool
// widths to hold that contract.
func (r ServeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving layer (Section-5 outlook): access methods behind sharded actors\n")
	fmt.Fprintf(&b, "%d records preloaded, %d requests across %d conflict-free client streams\n\n",
		r.N, r.Ops, r.Clients)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		verdict := "ok"
		if !row.Verified {
			verdict = fmt.Sprintf("FAIL(%d mismatches %s)", row.Mismatches, row.ServeErr)
		}
		rows = append(rows, []string{
			row.Method,
			fmt.Sprintf("%.2f", row.Clean.R),
			fmt.Sprintf("%.2f", row.Clean.U),
			fmt.Sprintf("%.3f", row.Clean.M),
			fmt.Sprintf("%d", row.Requests),
			fmt.Sprintf("%d", row.Hits),
			fmt.Sprintf("%d", row.FinalLen),
			verdict,
		})
	}
	b.WriteString(table([]string{"method", "RO", "UO", "MO", "requests", "hits", "final", "served"}, rows))
	b.WriteString("\nRO/UO/MO are measured by a deterministic single-instance replay of the\nidentical request streams: amplification is a per-operation property of the\naccess method, so sharding scales throughput without moving the RUM point.\n\"served ok\" means every live outcome matched its precomputed prediction and\nthe merged per-shard meters conserved the logical byte count exactly.\nThroughput and latency are wall-clock facts; they print to stderr.\n")
	return b.String()
}

// RenderTiming prints the wall-clock half: throughput, latency quantiles,
// and shard balance. Non-deterministic by nature — never part of stdout.
func (r ServeResult) RenderTiming() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(serve timing, non-deterministic: shards=%d clients=%d batch=%d)\n",
		r.Shards, r.Clients, r.Batch)
	for _, row := range r.Rows {
		min, max := ^uint64(0), uint64(0)
		for _, ops := range row.ShardOps {
			if ops < min {
				min = ops
			}
			if ops > max {
				max = ops
			}
		}
		if len(row.ShardOps) == 0 {
			min = 0
		}
		fmt.Fprintf(&b, "(  %-10s %9.0f req/s  p50=%-8v p99=%-8v elapsed=%-8v shard-ops=%d..%d  phys r/w=%s/%s)\n",
			row.Method, row.Throughput,
			row.P50.Round(time.Microsecond), row.P99.Round(time.Microsecond),
			row.Elapsed.Round(time.Millisecond),
			min, max,
			fmtBytes(float64(row.ServeMeter.PhysicalRead())), fmtBytes(float64(row.ServeMeter.PhysicalWritten())))
		if row.QueueP99 != 0 || row.ServiceP99 != 0 {
			// Per-op decomposition: batch p99 above is a Do round-trip, so
			// queue p99 (mailbox + in-batch wait) dominating service p99
			// means the latency lives in queueing, not in the structure.
			fmt.Fprintf(&b, "(  %-10s   per-op queue p50/p99=%v/%v  service p50/p99=%v/%v)\n",
				"", row.QueueP50.Round(time.Microsecond), row.QueueP99.Round(time.Microsecond),
				row.ServiceP50.Round(time.Microsecond), row.ServiceP99.Round(time.Microsecond))
		}
	}
	return b.String()
}
