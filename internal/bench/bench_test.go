package bench

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/rum"
)

// tiny is the fast configuration used by the experiment tests; the real
// sizes run in the repository-root benchmarks.
var tiny = Config{Seed: 1, N: 4096, Ops: 2000}

func TestProps(t *testing.T) {
	res := RunProps(tiny)
	if len(res.Results) != 3 {
		t.Fatalf("%d propositions", len(res.Results))
	}
	for _, p := range res.Results {
		if !p.Holds {
			t.Fatalf("Prop %d violated: %s", p.Prop, p.Detail)
		}
	}
	if !strings.Contains(res.Render(), "HOLDS") {
		t.Fatal("render")
	}
}

func TestTable1(t *testing.T) {
	res := RunTable1(tiny, []int{1 << 11, 1 << 13}, 64)
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	w := res.Winners()

	// The paper's winner claims among the four access methods.
	if w["index_size"] != "zonemap" {
		t.Fatalf("index_size winner %q, want zonemap", w["index_size"])
	}
	if w["insert"] != "lsm-level" {
		t.Fatalf("insert winner %q, want lsm-level", w["insert"])
	}
	// Point and range queries go to a tree or hash structure, never to the
	// scan-bound sparse index.
	if w["point_query"] == "zonemap" || w["range_query"] == "zonemap" {
		t.Fatalf("zonemap won a query column: %v", w)
	}

	// No single winner across all columns.
	distinct := map[string]bool{}
	for _, v := range w {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("a single method won everything: %v", w)
	}

	// Scaling shapes per method across N.
	for _, method := range []string{"btree", "hash", "zonemap", "lsm-level", "sorted-column", "unsorted-column"} {
		cells := res.CellsOf(method)
		if len(cells) != 2 {
			t.Fatalf("%s: %d cells", method, len(cells))
		}
	}
	// Unsorted column: point cost linear in N (4x data → ~4x reads).
	u := res.CellsOf("unsorted-column")
	if u[1].PointRead < u[0].PointRead*2 {
		t.Fatalf("unsorted point cost not linear: %v -> %v", u[0].PointRead, u[1].PointRead)
	}
	// Hash: point cost flat in N.
	h := res.CellsOf("hash")
	if h[1].PointRead > h[0].PointRead*2 {
		t.Fatalf("hash point cost grew: %v -> %v", h[0].PointRead, h[1].PointRead)
	}
	// Sorted column: insert cost linear in N.
	s := res.CellsOf("sorted-column")
	if s[1].InsertCost < s[0].InsertCost*2 {
		t.Fatalf("sorted insert cost not linear: %v -> %v", s[0].InsertCost, s[1].InsertCost)
	}
	if !strings.Contains(res.Render(), "no single winner") {
		t.Fatal("render")
	}
}

func TestFig1(t *testing.T) {
	// Fig-1 placement needs N well above the LSM memtable (1024 records),
	// or the memtable legitimately makes the LSM the cheapest reader.
	res := RunFig1(Config{Seed: 1, N: 8192, Ops: 4000})
	if len(res.Profiles) < 10 {
		t.Fatalf("%d profiles", len(res.Profiles))
	}
	if res.ChecksOK != len(res.Checks) {
		for _, c := range res.Checks {
			if !c.Holds {
				t.Errorf("ordering failed: %s(%s)=%.1f !< %s(%s)=%.1f", c.Dim, c.A, c.ValA, c.Dim, c.B, c.ValB)
			}
		}
		t.Fatalf("%d/%d orderings hold", res.ChecksOK, len(res.Checks))
	}
	// The flagship corners must classify correctly even at small N.
	corner := map[string]string{}
	for i, p := range res.Profiles {
		corner[p.Name] = res.Corners[i].String()
	}
	if corner["btree"] != "read-optimized" {
		t.Fatalf("btree classified %s", corner["btree"])
	}
	if corner["lsm-tier"] == "read-optimized" {
		t.Fatalf("lsm-tier classified %s", corner["lsm-tier"])
	}
	out := res.Render()
	if !strings.Contains(out, "Read Optimized") || !strings.Contains(out, "orderings hold") {
		t.Fatal("render")
	}
}

func TestFig2(t *testing.T) {
	res := RunFig2(tiny)
	if len(res.Points) < 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	if !res.Monotone {
		t.Fatalf("figure-2 interaction not monotone: %+v", res.Points)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.UpperMO <= first.UpperMO {
		t.Fatal("MO did not grow along the sweep")
	}
	if last.LowerReads >= first.LowerReads {
		t.Fatal("disk reads did not fall along the sweep")
	}
	if last.LowerWrite >= first.LowerWrite {
		t.Fatal("disk writes did not fall along the sweep")
	}
	if !strings.Contains(res.Render(), "Monotone") {
		t.Fatal("render")
	}
}

func TestFig3(t *testing.T) {
	res := RunFig3(Config{Seed: 1, N: 2048, Ops: 1200})
	if len(res.Families) < 5 {
		t.Fatalf("%d families", len(res.Families))
	}
	for _, fam := range res.Families {
		if len(fam.Points) < 2 {
			t.Fatalf("%s: %d configs", fam.Name, len(fam.Points))
		}
		// Tunability: the family must move through RUM space, covering a
		// nonzero span in at least one dimension...
		if fam.SpreadR+fam.SpreadU+fam.SpreadM < 0.2 {
			t.Fatalf("%s is a point, not an area: spreads %v %v %v", fam.Name, fam.SpreadR, fam.SpreadU, fam.SpreadM)
		}
		// ...and per the conjecture, no configuration dominates the family.
		if fam.FrontierSize < 2 {
			t.Fatalf("%s has a dominant configuration (frontier %d)", fam.Name, fam.FrontierSize)
		}
	}
	if !strings.Contains(res.Render(), "Pareto frontier") {
		t.Fatal("render")
	}
}

func TestConjecture(t *testing.T) {
	res := RunConjecture(Config{Seed: 1, N: 2048, Ops: 1200})
	if res.Dominant {
		t.Fatal("a single configuration dominated the whole grid — the conjecture's premise failed")
	}
	if res.Frontier < 3 {
		t.Fatalf("Pareto frontier %d too small", res.Frontier)
	}
	for _, tbl := range res.Tables {
		if !tbl.Monotone {
			t.Fatalf("cap table %s×%s→%s not monotone", tbl.DimA, tbl.DimB, tbl.DimC)
		}
		// The floor under the tightest caps must be at least the
		// unconstrained best (equality allowed, usually strictly worse).
		tight := tbl.Cells[0][0].Best
		if tight < tbl.GlobalBest-1e-9 {
			t.Fatalf("tight caps improved %s: %v < %v", tbl.DimC, tight, tbl.GlobalBest)
		}
	}
	if !strings.Contains(res.Render(), "RUM Conjecture") {
		t.Fatal("render")
	}
}

func TestAdaptive(t *testing.T) {
	res := RunAdaptive(tiny)
	if len(res.CrackSteps) != 10 {
		t.Fatalf("%d crack steps", len(res.CrackSteps))
	}
	if !res.Converged {
		t.Fatalf("cracking did not converge: first %.3f last %.3f of column per query",
			res.FirstOverN, res.LastOverN)
	}
	// Per-decile read cost must be (weakly) decreasing overall.
	first := res.CrackSteps[0].AvgRead
	last := res.CrackSteps[len(res.CrackSteps)-1].AvgRead
	if last >= first {
		t.Fatal("crack read cost did not fall")
	}
	if len(res.Phases) != 3 {
		t.Fatalf("%d phases", len(res.Phases))
	}
	if res.Migrations == 0 {
		t.Fatal("morphing engine never changed shape across contrasting phases")
	}
	if !strings.Contains(res.Render(), "cracking") {
		t.Fatal("render")
	}
}

func TestRenderTriangleManyPoints(t *testing.T) {
	// Regression: more points than letters must not hang.
	pts := make([]NamedPoint, 40)
	for i := range pts {
		pts[i] = NamedPoint{Label: "p", Point: rum.Point{R: 1 + float64(i), U: 2, M: 3}}
	}
	out := RenderTriangle(pts, 41)
	if !strings.Contains(out, "Read Optimized") {
		t.Fatal("render")
	}
}

func TestExtensions(t *testing.T) {
	res := RunExtensions(tiny)
	// Approximate indexing: the filters must prune the bulk of in-range
	// misses and read far less base data than the plain zone map.
	if res.FilterSkipRate < 0.8 {
		t.Fatalf("filters pruned only %.0f%% of misses", res.FilterSkipRate*100)
	}
	if res.ApproxMissRead*3 > res.ZonemapMissRead {
		t.Fatalf("approx miss reads %d not well below zonemap %d", res.ApproxMissRead, res.ZonemapMissRead)
	}
	if res.ApproxMO <= res.ZonemapMO {
		t.Fatal("filters must cost space")
	}
	// Differential structures write fewer pages than the in-place tree.
	if res.PBTWrites >= res.BTreeWrites {
		t.Fatalf("pbt writes %d not below btree %d", res.PBTWrites, res.BTreeWrites)
	}
	if res.LSMWrites >= res.BTreeWrites {
		t.Fatalf("lsm writes %d not below btree %d", res.LSMWrites, res.BTreeWrites)
	}
	// Cache-oblivious layout touches fewer lines but stores more.
	if res.VEBLines >= res.BinaryLines {
		t.Fatalf("vEB lines %.2f not below binary %.2f", res.VEBLines, res.BinaryLines)
	}
	if res.VEBMO <= 1.5 {
		t.Fatalf("vEB MO %.2f suspiciously low", res.VEBMO)
	}
	if !strings.Contains(res.Render(), "Cache-oblivious") {
		t.Fatal("render")
	}
}

func TestChaos(t *testing.T) {
	plan := faults.Plan{Seed: 9, PRead: 0.02, PWrite: 0.02, PTorn: 0.5}
	res := RunChaos(tiny, plan)
	if len(res.Rows) != 3 {
		t.Fatalf("%d chaos rows", len(res.Rows))
	}
	var transients, retries uint64
	for _, row := range res.Rows {
		if row.Clean.R <= 0 || row.Clean.U <= 0 {
			t.Fatalf("%s: degenerate clean point %+v", row.Method, row.Clean)
		}
		if row.Degraded.R <= 0 || row.Degraded.U <= 0 {
			t.Fatalf("%s: degenerate degraded point %+v", row.Method, row.Degraded)
		}
		if !row.Crash.Verdict.Acceptable() {
			t.Fatalf("%s: crash trial violated its %s contract: %s",
				row.Method, row.Durability, row.Crash)
		}
		transients += row.Faults.TransientReads + row.Faults.TransientWrites
		retries += row.Pool.Retries
	}
	if transients == 0 {
		t.Fatal("plan injected no transient faults — nothing was degraded")
	}
	if retries == 0 {
		t.Fatal("pool recorded no retries under an active fault plan")
	}
	if out := res.Render(); !strings.Contains(out, "Crash trial") {
		t.Fatal("render")
	}
}

// TestChaosDefaultPlan: an inactive plan must be replaced by the default
// degradation profile, not run a no-op chaos experiment.
func TestChaosDefaultPlan(t *testing.T) {
	res := RunChaos(tiny, faults.Plan{})
	if !res.Plan.Active() {
		t.Fatal("inactive plan was not defaulted")
	}
	if res.Plan.Seed != uint64(tiny.Seed) {
		t.Fatalf("default plan seed %d, want %d", res.Plan.Seed, tiny.Seed)
	}
}
