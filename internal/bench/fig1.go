package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/rum"
	"repro/internal/workload"
)

// OrderCheck is one pairwise ordering the paper's Figure 1 implies: in
// dimension Dim, structure A must measure a lower amplification than B.
type OrderCheck struct {
	Dim   string // "R", "U" or "M"
	A, B  string
	ValA  float64
	ValB  float64
	Holds bool
}

// Fig1Result holds the measured RUM placement of every catalog structure
// under the canonical mixed workload — the empirical Figure 1.
type Fig1Result struct {
	N        int
	Ops      int
	Profiles []core.Profile
	Weights  []rum.Weights     // cohort-relative triangle positions
	Expected map[string]string // structure → paper's corner
	Corners  []rum.Corner      // measured relative corner per profile
	Agree    int               // structures landing in their paper corner
	Checks   []OrderCheck      // the figure's pairwise ordering claims
	ChecksOK int
}

// fig1Tolerance is the dominance margin for relative corner classification.
const fig1Tolerance = 0.06

// fig1Mix is the placement workload: point-dominated with a sliver of range
// queries, the regime Figure 1's structures are designed around. (Heavy
// range scanning is a different design space — the analytics example and
// Table 1 cover it.)
var fig1Mix = workload.Mix{Get: 0.58, Insert: 0.20, Update: 0.17, Delete: 0.05}

// fig1Orderings are the concrete orderings Figure 1 asserts, restricted to
// comparisons that are meaningful under one accounting granularity:
// read-optimized structures must out-read write- and space-optimized ones,
// differential structures must out-write in-place ones, and sparse or
// compressed structures must out-store pointer-heavy ones.
var fig1Orderings = []struct{ dim, a, b string }{
	// Read overhead: indexes beat scans and probing stores.
	{"R", "btree", "unsorted-column"},
	{"R", "hash", "unsorted-column"},
	{"R", "skiplist", "unsorted-column"},
	{"R", "btree", "bitmap"},
	{"R", "hash", "bitmap"},
	{"R", "trie", "unsorted-column"},
	// Update overhead: differential structures beat in-place page writers,
	// and lazier merging beats eager merging.
	{"U", "lsm-tier", "btree"},
	{"U", "lsm-tier", "hash"},
	{"U", "lsm-tier", "lsm-level"},
	{"U", "lsm-level", "sorted-column"},
	{"U", "unsorted-column", "sorted-column"},
	// Memory overhead: sparse and compressed structures beat node-heavy ones.
	{"M", "zonemap", "btree"},
	{"M", "zonemap", "trie"},
	{"M", "bitmap", "trie"},
	{"M", "sorted-column", "skiplist"},
	{"M", "lsm-level", "lsm-tier"},
}

// RunFig1 profiles every access method of the catalog under the same mixed
// workload and maps each into the RUM triangle, reproducing the placement of
// Figure 1 from measurements instead of expert judgment. Placement is
// cohort-relative (the figure compares structures to each other, not to the
// theoretical optimum of 1.0); the absolute amplifications are reported in
// the accompanying table.
func RunFig1(cfg Config) Fig1Result {
	cfg.Defaults()
	if cfg.Storage.PoolPages == 0 {
		// A small pool keeps page-based structures honest: Figure 1 is about
		// data access cost, not cache hit luck.
		cfg.Storage.PoolPages = 8
	}
	res := Fig1Result{N: cfg.N, Ops: cfg.Ops, Expected: map[string]string{}}
	var expected []rum.Corner
	// One run cell per catalog structure. The spec is re-looked-up inside the
	// cell so the structure is built against the cell's own Options (and its
	// isolated storage hook), not the enumeration-time ones.
	catalog := methods.Catalog(cfg.Storage)
	profiles := make([]core.Profile, len(catalog))
	cells := make([]Cell, len(catalog))
	for i, spec := range catalog {
		i, name := i, spec.Name
		res.Expected[name] = spec.Corner.String()
		expected = append(expected, spec.Corner)
		cells[i] = Cell{
			Label: name,
			Run: func(ccfg Config) {
				cspec, err := methods.Lookup(ccfg.Storage, name)
				if err != nil {
					panic(fmt.Sprintf("fig1: %s: %v", name, err))
				}
				gen := workload.New(workload.Config{
					Seed:       ccfg.Seed,
					Mix:        fig1Mix,
					InitialLen: ccfg.N,
					RangeLen:   1 << 30, // wide spans over the sparse 40-bit key domain
				})
				am := cspec.New()
				ccfg.observe(am, name)
				prof, err := core.RunProfile(am, gen, ccfg.Ops)
				if err != nil {
					panic(fmt.Sprintf("fig1: %s: %v", name, err))
				}
				prof.Name = name
				profiles[i] = prof
			},
		}
	}
	cfg.runCells("fig1", cells)
	res.Profiles = profiles
	pts := make([]rum.Point, len(res.Profiles))
	for i, p := range res.Profiles {
		pts[i] = p.Point
	}
	res.Weights = rum.RelativeWeights(pts)
	for i := range res.Profiles {
		c := res.Weights[i].Classify(fig1Tolerance)
		res.Corners = append(res.Corners, c)
		if c == expected[i] {
			res.Agree++
		}
	}
	byName := map[string]rum.Point{}
	for _, p := range res.Profiles {
		byName[p.Name] = p.Point
	}
	dimOf := func(p rum.Point, d string) float64 {
		switch d {
		case "R":
			return p.R
		case "U":
			return p.U
		default:
			return p.M
		}
	}
	for _, o := range fig1Orderings {
		va, vb := dimOf(byName[o.a], o.dim), dimOf(byName[o.b], o.dim)
		c := OrderCheck{Dim: o.dim, A: o.a, B: o.b, ValA: va, ValB: vb, Holds: va < vb}
		if c.Holds {
			res.ChecksOK++
		}
		res.Checks = append(res.Checks, c)
	}
	return res
}

// Render prints the measured placements and the ASCII triangle.
func (r Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 (measured): structures in the RUM space (N=%d, ops=%d, balanced mix)\n\n", r.N, r.Ops)
	pts := make([]NamedPoint, 0, len(r.Profiles))
	rows := make([][]string, 0, len(r.Profiles))
	for i, p := range r.Profiles {
		w := r.Weights[i]
		pts = append(pts, NamedPoint{Label: p.Name, Point: p.Point, W: &w})
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%.2f", p.Point.R),
			fmt.Sprintf("%.2f", p.Point.U),
			fmt.Sprintf("%.3f", p.Point.M),
			r.Corners[i].String(),
			r.Expected[p.Name],
		})
	}
	b.WriteString(table([]string{"structure", "RO", "UO", "MO", "measured corner", "paper corner"}, rows))
	b.WriteString("\n")
	b.WriteString(RenderTriangle(pts, 61))
	fmt.Fprintf(&b, "\n%d/%d structures land in their Figure-1 region.\n\n", r.Agree, len(r.Profiles))
	b.WriteString("Pairwise ordering claims of Figure 1:\n")
	for _, c := range r.Checks {
		mark := "ok "
		if !c.Holds {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s(%s)=%.1f < %s(%s)=%.1f\n", mark, c.Dim, c.A, c.ValA, c.Dim, c.B, c.ValB)
	}
	fmt.Fprintf(&b, "%d/%d orderings hold.\n", r.ChecksOK, len(r.Checks))
	return b.String()
}
