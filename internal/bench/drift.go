package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/obs"
	"repro/internal/serve"
)

// The drift experiment closes the loop between the workload fingerprinter
// and the RUM advisor: one serving instance takes a diurnal, phase-shifting
// stream — write-heavy ingest, then zipf-skewed point serving, then a scan
// storm — and the experiment reports what the fingerprinter saw window by
// window and which catalog configuration the advisor would have moved to.
// The claim under test is the paper's: no single configuration is best
// placed for all three phases, and a mix/skew/working-set fingerprint is
// enough to see the boundary crossings from the op stream alone.
//
// Determinism contract. One client, one shard, one driver goroutine:
// requests execute in submission order, the fingerprint windows rotate on
// op counts, and every probabilistic summary (count-min, top-k, HLL) uses
// fixed hashes — so stdout is byte-identical at any -parallel width, shard
// count, or batch size, and the smoke gate diffs it. Every point outcome
// and every scan's row count is verified against the generator's model.

// driftPhases is the diurnal schedule: name, mix, and key distribution of
// each phase. Phases run back to back against the same instance and split
// the op budget evenly.
var driftPhases = []struct {
	name string
	mix  ServeMix
	dist string
}{
	{"ingest", ServeMix{Get: 0.15, Insert: 0.70, Update: 0.10, Delete: 0.05, GetMiss: 0.05}, "uniform"},
	{"serve", ServeMix{Get: 0.90, Insert: 0.05, Update: 0.05, GetMiss: 0.05}, "zipf:1.1"},
	{"scan-storm", ServeMix{Get: 0.50, Insert: 0.05, Update: 0.05, Scan: 0.40, ScanRows: 512, GetMiss: 0.05}, "hotspot:90/10"},
}

// driftMethod is the serving subject the advisor critiques. A B-tree is the
// interesting choice: well placed for the scan storm, beatable in the other
// two phases, so the advisor has something to say.
const driftMethod = "btree"

// DriftWindowRow is one completed fingerprint window of the run.
type DriftWindowRow struct {
	Window  uint64
	Phase   string // phase the window's ops mostly came from
	Stats   obs.FingerprintStats
	Drift   float64 // distance from the previous window
	Advice  obs.Advice
	Latched bool // a drift event latched at this window
}

// DriftResult is the rendered drift experiment.
type DriftResult struct {
	N, Ops    int
	WindowOps int
	Windows   []DriftWindowRow
	// DriftEvents is the recorder's latched event count; Advised counts the
	// distinct configurations the advisor picked across windows.
	DriftEvents uint64
	Advised     []string
	Verified    bool
	Mismatches  int
}

// RunDrift drives the diurnal schedule through a fingerprinting server and
// maps every completed window through the advisor.
func RunDrift(cfg Config) DriftResult {
	cfg.Defaults()
	var res DriftResult
	cells := []Cell{{
		Label: driftMethod + "/drift",
		Run:   func(ccfg Config) { res = runDrift(ccfg) },
	}}
	cfg.runCells("drift", cells)
	return res
}

func runDrift(cfg Config) DriftResult {
	nInit := cfg.N / 4
	// Four fingerprint windows per phase, aligned exactly: no runt window at
	// the end, and every window's ops come from a single phase — drift events
	// latch at the boundaries, not at partial-window artifacts.
	windowOps := cfg.Ops / 12
	if windowOps < 64 {
		windowOps = 64
	}
	phaseOps := 4 * windowOps
	totalOps := phaseOps * len(driftPhases)

	sopt := cfg.Storage
	sopt.Hook = nil // single cell; keep the run untraced and deterministic
	spec, err := methods.Lookup(sopt, driftMethod)
	if err != nil {
		panic(fmt.Sprintf("drift: %v", err))
	}
	srv, err := serve.New(serve.Config{
		Shards: 1,
		Build:  func(int) *core.Instrumented { return spec.New() },
		Workload: &serve.WorkloadConfig{
			WindowOps: windowOps,
			Keep:      totalOps/windowOps + 2, // retain every window of the run
		},
	})
	if err != nil {
		panic(fmt.Sprintf("drift: %v", err))
	}

	g := NewStreamGen(cfg.Seed, 0, driftPhases[0].mix)
	if err := srv.Preload(g.InitRecords(nInit)); err != nil {
		panic(fmt.Sprintf("drift: preload: %v", err))
	}

	// phaseOf maps a window to the phase that contributed most of its ops.
	phaseOf := func(win uint64) string {
		mid := (float64(win) - 0.5) * float64(windowOps)
		i := int(mid / float64(phaseOps))
		if i >= len(driftPhases) {
			i = len(driftPhases) - 1
		}
		return driftPhases[i].name
	}

	const batch = 64
	reqs := make([]serve.Request, 0, batch)
	want := make([]serve.Result, 0, batch)
	out := make([]serve.Result, batch)
	mismatches := 0
	flush := func() {
		if len(reqs) == 0 {
			return
		}
		if err := srv.Do(reqs, out[:len(reqs)]); err != nil {
			panic(fmt.Sprintf("drift: do: %v", err))
		}
		for i := range reqs {
			if out[i] != want[i] {
				mismatches++
			}
		}
		reqs, want = reqs[:0], want[:0]
	}
	for _, ph := range driftPhases {
		dist, err := ParseKeyDist(ph.dist)
		if err != nil {
			panic(fmt.Sprintf("drift: %v", err))
		}
		g.SetPhase(ph.mix, dist)
		for i := 0; i < phaseOps; i++ {
			op := g.NextOp()
			if op.Scan {
				// A scan is a barrier: the batch ahead of it must land first
				// so the row count matches the model.
				flush()
				rows := srv.RangeScan(op.Lo, op.Hi, func(core.Key, core.Value) bool { return true })
				if rows != op.WantRows {
					mismatches++
				}
				continue
			}
			reqs = append(reqs, op.Req)
			want = append(want, op.Want)
			if len(reqs) == batch {
				flush()
			}
		}
		flush()
	}
	reports, err := srv.Stop()
	if err != nil {
		panic(fmt.Sprintf("drift: stop: %v", err))
	}
	w := reports[0].Workload
	if w == nil {
		panic("drift: no workload snapshot")
	}
	finalLen := reports[0].Len
	if finalLen != g.Live() {
		mismatches++
	}

	res := DriftResult{
		N: nInit, Ops: totalOps, WindowOps: windowOps,
		DriftEvents: w.DriftCount,
		Verified:    mismatches == 0,
		Mismatches:  mismatches,
	}
	latched := map[uint64]bool{}
	for _, ev := range w.Events {
		latched[ev.Window] = true
	}
	seen := map[string]bool{}
	var prev obs.FingerprintStats
	for i := range w.Recent {
		fp := &w.Recent[i]
		st := fp.Stats()
		row := DriftWindowRow{
			Window:  fp.Window,
			Phase:   phaseOf(fp.Window),
			Stats:   st,
			Advice:  obs.Advise(fp, float64(finalLen), driftMethod),
			Latched: latched[fp.Window],
		}
		if i > 0 {
			row.Drift = obs.DriftScore(prev, st)
		}
		prev = st
		if !seen[row.Advice.Best.Config] {
			seen[row.Advice.Best.Config] = true
			res.Advised = append(res.Advised, row.Advice.Best.Config)
		}
		res.Windows = append(res.Windows, row)
	}
	return res
}

// Render prints the experiment: one row per fingerprint window, the drift
// trail, and the advisor's verdicts. Fully deterministic.
func (r DriftResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workload drift & the RUM advisor: %s under a diurnal phase schedule\n", driftMethod)
	fmt.Fprintf(&b, "%d records preloaded, %d ops in %d phases (%s), fingerprint window %d ops\n\n",
		r.N, r.Ops, len(driftPhases), driftPhaseNames(), r.WindowOps)
	rows := make([][]string, 0, len(r.Windows))
	for _, w := range r.Windows {
		drift := fmt.Sprintf("%.2f", w.Drift)
		if w.Latched {
			drift += "*"
		}
		advice := w.Advice.Best.Config
		if w.Advice.Moved() {
			advice += fmt.Sprintf(" (Δ%.2f/op)", w.Advice.Delta)
		} else {
			advice = "(stay) " + advice
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", w.Window),
			w.Phase,
			fmt.Sprintf("%.2f/%.2f/%.2f/%.2f/%.2f",
				w.Stats.Get, w.Stats.Insert, w.Stats.Update, w.Stats.Delete, w.Stats.Scan),
			fmt.Sprintf("%.2f", w.Stats.HotShare),
			fmt.Sprintf("%.2f", w.Stats.ZipfSlope),
			fmt.Sprintf("%.0f", w.Stats.Distinct),
			fmt.Sprintf("%.0f", w.Stats.ScanP50),
			drift,
			advice,
		})
	}
	b.WriteString(table([]string{"win", "phase", "g/i/u/d/s", "hot", "zipf", "distinct", "scanp50", "drift", "advised"}, rows))
	verdict := "ok"
	if !r.Verified {
		verdict = fmt.Sprintf("FAIL(%d mismatches)", r.Mismatches)
	}
	fmt.Fprintf(&b, "\n%d drift event(s) latched (drift* rows); advisor recommended %d distinct configuration(s): %s\n",
		r.DriftEvents, len(r.Advised), strings.Join(r.Advised, ", "))
	fmt.Fprintf(&b, "every op outcome and scan row count verified against the generator's model: %s\n", verdict)
	b.WriteString("\nThe advisor is report-only: each window's fingerprint (mix, hot-key share,\nzipf slope, working set, scan lengths) is priced through the paper's RO/UO/MO\nmodel for every catalog configuration; \"advised\" is the cheapest seat for\nthat window's traffic with the predicted per-op saving over staying put.\nNo phase's winner survives the next phase — the RUM trade-off in motion.\n")
	return b.String()
}

func driftPhaseNames() string {
	names := make([]string, len(driftPhases))
	for i, p := range driftPhases {
		names[i] = p.name
	}
	return strings.Join(names, " → ")
}
