package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/methods"
)

// Table1Row is one (method, N) cell set of Table 1: measured bulk-creation
// I/O, index size, and per-operation physical read/write bytes for point
// queries, range queries of result size m, and inserts.
type Table1Row struct {
	Method     string
	N          int
	M          int     // range result size
	BulkBytes  uint64  // physical bytes moved to build (incl. external sort)
	AuxBytes   uint64  // index size (everything beyond the base data)
	SpaceAmp   float64 // MO
	PointRead  float64 // avg physical bytes read per point query
	RangeRead  float64 // avg physical bytes read per range query
	InsertCost float64 // avg physical bytes written+read per insert
}

// Table1Result is the measured Table 1.
type Table1Result struct {
	Ns   []int
	M    int
	Rows []Table1Row
}

// sortCharged lists methods whose bulk creation requires sorted input, so
// the harness charges an external sort first (Table 1's footnote: "bulk
// loading requires sorting").
var sortCharged = map[string]bool{
	"btree":         true,
	"sorted-column": true,
	"zonemap":       true,
	"lsm-level":     true,
	"lsm-tier":      true,
}

// table1Methods is the cast of Table 1: four access methods plus the two
// base-data organizations.
var table1Methods = []string{"btree", "hash", "zonemap", "lsm-level", "sorted-column", "unsorted-column"}

// RunTable1 measures every Table 1 cell empirically: each structure is bulk
// created at size N (charging external sorting where the model requires it),
// then probed with point queries, range queries of result size m, and
// inserts, on a cold-ish buffer pool of MEM pages. Every (N, method) pair is
// an independent run cell executed on cfg.Runner; rows are assembled in
// enumeration order.
func RunTable1(cfg Config, ns []int, m int) Table1Result {
	cfg.Defaults()
	if cfg.Storage.PoolPages == 0 {
		// MEM must be small relative to N, or the buffer pool hides the I/O
		// costs Table 1 is about.
		cfg.Storage.PoolPages = 4
	}
	if len(ns) == 0 {
		ns = []int{1 << 14, 1 << 16, 1 << 18}
	}
	if m <= 0 {
		m = 256
	}
	res := Table1Result{Ns: ns, M: m}
	var cells []Cell
	var rows []*Table1Row
	for _, n := range ns {
		for _, name := range table1Methods {
			n, name := n, name
			row := new(Table1Row)
			rows = append(rows, row)
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/N=%d", name, n),
				Run: func(ccfg Config) {
					recs := makeRecords(ccfg.Seed, n)
					*row = runTable1Cell(ccfg, name, recs, m)
				},
			})
		}
	}
	cfg.runCells("table1", cells)
	for _, row := range rows {
		res.Rows = append(res.Rows, *row)
	}
	return res
}

const table1Queries = 300

func runTable1Cell(cfg Config, name string, recs []core.Record, m int) Table1Row {
	spec, err := methods.Lookup(cfg.Storage, name)
	if err != nil {
		panic(err)
	}
	am := spec.New()
	cfg.observe(am, name)
	row := Table1Row{Method: name, N: len(recs), M: m}

	// --- Bulk creation ---
	loadRecs := make([]core.Record, len(recs))
	copy(loadRecs, recs)
	start := am.Meter().Snapshot()
	if sortCharged[name] {
		// The external sort charges am's meter outside any Instrumented
		// operation; wrap it in an explicit span so traces stay conservative
		// (span deltas sum to the meter totals).
		if cfg.Obs != nil {
			cfg.Obs.BeginOp("extsort")
		}
		extsort.Sort(loadRecs, poolPages(cfg), pageSize(cfg), am.Meter())
		if cfg.Obs != nil {
			cfg.Obs.EndOp("extsort")
		}
	}
	if err := am.BulkLoad(loadRecs); err != nil {
		panic(fmt.Sprintf("table1: bulk load %s: %v", name, err))
	}
	am.Flush()
	d := am.Meter().Diff(start)
	row.BulkBytes = d.PhysicalRead() + d.PhysicalWritten()

	// --- Index size ---
	size := am.Size()
	row.AuxBytes = size.AuxBytes
	row.SpaceAmp = size.SpaceAmplification()

	rng := rand.New(rand.NewSource(cfg.Seed + 77))

	// Warm-up churn: bring the structure to a steady state (the LSM gets a
	// memtable and young runs, pages age in the pool) before measuring.
	for i := 0; i < len(recs)/10; i++ {
		r := recs[rng.Intn(len(recs))]
		am.Update(r.Key, r.Value+1)
	}
	am.Flush()

	// --- Point queries (hits) ---
	start = am.Meter().Snapshot()
	for i := 0; i < table1Queries; i++ {
		k := recs[rng.Intn(len(recs))].Key
		am.Get(k)
	}
	d = am.Meter().Diff(start)
	row.PointRead = float64(d.PhysicalRead()) / table1Queries

	// --- Range queries of result size m ---
	start = am.Meter().Snapshot()
	ranges := table1Queries / 10
	for i := 0; i < ranges; i++ {
		lo := rng.Intn(len(recs) - m)
		from, to := recs[lo].Key, recs[lo+m-1].Key
		am.RangeScan(from, to, func(core.Key, core.Value) bool { return true })
	}
	d = am.Meter().Diff(start)
	row.RangeRead = float64(d.PhysicalRead()) / float64(ranges)

	// --- Inserts (fresh keys) ---
	start = am.Meter().Snapshot()
	inserted := 0
	for i := 0; inserted < table1Queries; i++ {
		k := rng.Uint64() >> 24
		if err := am.Insert(k, rng.Uint64()>>1); err == nil {
			inserted++
		}
	}
	am.Flush()
	d = am.Meter().Diff(start)
	row.InsertCost = float64(d.PhysicalWritten()+d.PhysicalRead()) / table1Queries
	return row
}

func pageSize(cfg Config) int {
	if cfg.Storage.PageSize > 0 {
		return cfg.Storage.PageSize
	}
	return 4096
}

func poolPages(cfg Config) int {
	if cfg.Storage.PoolPages > 0 {
		return cfg.Storage.PoolPages
	}
	return 64
}

// Winners summarizes which method won each column at the largest N — the
// "there is no single winner" observation under Table 1.
func (r Table1Result) Winners() map[string]string {
	if len(r.Rows) == 0 {
		return nil
	}
	maxN := 0
	for _, row := range r.Rows {
		if row.N > maxN {
			maxN = row.N
		}
	}
	// The paper's winner statements compare the four access methods; the two
	// raw column organizations are baselines.
	indexes := map[string]bool{"btree": true, "hash": true, "zonemap": true, "lsm-level": true}
	best := func(metric func(Table1Row) float64) string {
		name, bestV := "", 0.0
		for _, row := range r.Rows {
			if row.N != maxN || !indexes[row.Method] {
				continue
			}
			v := metric(row)
			if name == "" || v < bestV {
				name, bestV = row.Method, v
			}
		}
		return name
	}
	return map[string]string{
		"index_size":  best(func(r Table1Row) float64 { return float64(r.AuxBytes) }),
		"point_query": best(func(r Table1Row) float64 { return r.PointRead }),
		"range_query": best(func(r Table1Row) float64 { return r.RangeRead }),
		"insert":      best(func(r Table1Row) float64 { return r.InsertCost }),
		"bulk_create": best(func(r Table1Row) float64 { return float64(r.BulkBytes) }),
	}
}

// Render prints the measured Table 1 in the paper's layout.
func (r Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 (measured): physical bytes per operation, range result m=%d\n\n", r.M)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method,
			fmt.Sprintf("%d", row.N),
			fmtBytes(float64(row.BulkBytes)),
			fmtBytes(float64(row.AuxBytes)),
			fmt.Sprintf("%.3f", row.SpaceAmp),
			fmtBytes(row.PointRead),
			fmtBytes(row.RangeRead),
			fmtBytes(row.InsertCost),
		})
	}
	b.WriteString(table(
		[]string{"method", "N", "bulk-create", "index-size", "MO", "point-query", "range-query", "insert"},
		rows,
	))
	b.WriteString("\nColumn winners at the largest N (paper: \"there is no single winner\"):\n")
	w := r.Winners()
	for _, col := range []string{"bulk_create", "index_size", "point_query", "range_query", "insert"} {
		fmt.Fprintf(&b, "  %-12s %s\n", col, w[col])
	}
	return b.String()
}

// CellsOf returns the rows for one method across every N (scaling checks).
func (r Table1Result) CellsOf(method string) []Table1Row {
	var out []Table1Row
	for _, row := range r.Rows {
		if row.Method == method {
			out = append(out, row)
		}
	}
	return out
}
