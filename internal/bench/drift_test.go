package bench

import (
	"strings"
	"testing"
)

func quickDriftCfg() Config {
	return Config{Seed: 9, N: 1 << 14, Ops: 9000}
}

// The drift experiment's acceptance contract: byte-deterministic stdout at
// any runner width, every outcome verified, drift latched at the phase
// boundaries, and the advisor recommending at least two distinct
// configurations across the diurnal schedule.
func TestDriftDeterministicAndAdvised(t *testing.T) {
	a := RunDrift(quickDriftCfg())
	wide := quickDriftCfg()
	wide.Runner = NewRunner(8)
	b := RunDrift(wide)
	if a.Render() != b.Render() {
		t.Errorf("Render differs between sequential and 8-worker runner:\n--- seq\n%s--- wide\n%s", a.Render(), b.Render())
	}
	if !a.Verified {
		t.Fatalf("drift run not verified: %d mismatches", a.Mismatches)
	}
	if len(a.Advised) < 2 {
		t.Errorf("advisor recommended %d distinct configs %v, want ≥2 across phases", len(a.Advised), a.Advised)
	}
	if a.DriftEvents < 2 {
		t.Errorf("%d drift events latched, want ≥2 (two phase boundaries)", a.DriftEvents)
	}
	if len(a.Windows) != 12 {
		t.Errorf("%d fingerprint windows, want 12 (4 per phase, aligned)", len(a.Windows))
	}
	// Windows align with phases: every row's dominant mix op matches its
	// phase, and scans appear only in the storm.
	for _, w := range a.Windows {
		switch w.Phase {
		case "ingest":
			if w.Stats.Insert < 0.5 {
				t.Errorf("window %d (ingest): insert fraction %.2f", w.Window, w.Stats.Insert)
			}
		case "serve":
			if w.Stats.Get < 0.8 || w.Stats.Scan != 0 {
				t.Errorf("window %d (serve): get %.2f scan %.2f", w.Window, w.Stats.Get, w.Stats.Scan)
			}
		case "scan-storm":
			if w.Stats.Scan < 0.3 || w.Stats.Delete > 0.01 {
				t.Errorf("window %d (storm): scan %.2f delete %.2f", w.Window, w.Stats.Scan, w.Stats.Delete)
			}
		default:
			t.Errorf("window %d: unknown phase %q", w.Window, w.Phase)
		}
		if w.Advice.Best.Config == "" || w.Advice.Best.Cost <= 0 {
			t.Errorf("window %d: empty advice %+v", w.Window, w.Advice.Best)
		}
	}
	// The drift trail latches at boundary windows only: a latched row's
	// phase differs from its predecessor's.
	for i := 1; i < len(a.Windows); i++ {
		latched, changed := a.Windows[i].Latched, a.Windows[i].Phase != a.Windows[i-1].Phase
		if latched != changed {
			t.Errorf("window %d: latched=%v but phase change=%v", a.Windows[i].Window, latched, changed)
		}
	}
	out := a.Render()
	for _, want := range []string{"diurnal", "drift event(s) latched", "verified against the generator's model: ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
