package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rum"
)

// CapCell is one cell of a conjecture table: with caps on two overheads, the
// best achievable value of the third among all measured configurations.
type CapCell struct {
	CapA, CapB float64
	Best       float64 // +Inf when no configuration satisfies both caps
	Config     string
}

// CapTable is one rotation of the conjecture: dimensions A and B are capped,
// C is minimized.
type CapTable struct {
	DimA, DimB, DimC string
	Cells            [][]CapCell
	CapsA, CapsB     []float64
	// Monotone reports that tightening either cap never improves the best C
	// — the empirical signature of "an upper bound for two sets a lower
	// bound for the third".
	Monotone bool
	// GlobalBest is the best C with no caps at all.
	GlobalBest float64
	// TightPenalty = best C under the tightest caps / GlobalBest.
	TightPenalty float64
}

// ConjectureResult is the Section-3 experiment: over every tuning
// configuration measured in the Figure-3 sweep, no configuration dominates,
// and capping any two overheads floors the third.
type ConjectureResult struct {
	Points   []ConfigPoint
	Tables   [3]CapTable
	Frontier int  // Pareto-optimal configurations across all families
	Dominant bool // whether any single configuration dominates all others
}

// RunConjecture reuses the Figure-3 sweep as a configuration grid and
// evaluates the conjecture empirically on it.
func RunConjecture(cfg Config) ConjectureResult {
	fig3 := RunFig3(cfg)
	var pts []ConfigPoint
	for _, fam := range fig3.Families {
		for _, p := range fam.Points {
			pts = append(pts, ConfigPoint{Config: fam.Name + ":" + p.Config, Point: p.Point})
		}
	}
	return evaluateConjecture(pts)
}

func dim(p rum.Point, d string) float64 {
	switch d {
	case "R":
		return p.R
	case "U":
		return p.U
	default:
		return p.M
	}
}

func evaluateConjecture(pts []ConfigPoint) ConjectureResult {
	res := ConjectureResult{Points: pts}

	// Pareto frontier and domination across the whole grid.
	res.Dominant = false
	for i, a := range pts {
		dominatedByA := 0
		dominated := false
		for j, b := range pts {
			if i == j {
				continue
			}
			if a.Point.Dominates(b.Point) {
				dominatedByA++
			}
			if b.Point.Dominates(a.Point) {
				dominated = true
			}
		}
		if !dominated {
			res.Frontier++
		}
		if dominatedByA == len(pts)-1 {
			res.Dominant = true
		}
	}

	rotations := [3][3]string{{"R", "U", "M"}, {"U", "M", "R"}, {"R", "M", "U"}}
	for t, rot := range rotations {
		res.Tables[t] = buildCapTable(pts, rot[0], rot[1], rot[2])
	}
	return res
}

// quantiles returns the q25/q50/q75 of dimension d over the grid, plus +Inf
// (no cap).
func quantiles(pts []ConfigPoint, d string) []float64 {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = dim(p.Point, d)
	}
	sort.Float64s(vals)
	q := func(f float64) float64 { return vals[int(f*float64(len(vals)-1))] }
	return []float64{q(0.25), q(0.5), q(0.75), math.Inf(1)}
}

func buildCapTable(pts []ConfigPoint, a, b, c string) CapTable {
	tbl := CapTable{DimA: a, DimB: b, DimC: c, CapsA: quantiles(pts, a), CapsB: quantiles(pts, b)}
	best := func(capA, capB float64) (float64, string) {
		bv, bc := math.Inf(1), ""
		for _, p := range pts {
			if dim(p.Point, a) <= capA && dim(p.Point, b) <= capB {
				if v := dim(p.Point, c); v < bv {
					bv, bc = v, p.Config
				}
			}
		}
		return bv, bc
	}
	for _, ca := range tbl.CapsA {
		row := make([]CapCell, 0, len(tbl.CapsB))
		for _, cb := range tbl.CapsB {
			v, cfgName := best(ca, cb)
			row = append(row, CapCell{CapA: ca, CapB: cb, Best: v, Config: cfgName})
		}
		tbl.Cells = append(tbl.Cells, row)
	}
	tbl.GlobalBest = tbl.Cells[len(tbl.Cells)-1][len(tbl.CapsB)-1].Best
	tight := tbl.Cells[0][0].Best
	if tbl.GlobalBest > 0 && !math.IsInf(tight, 1) {
		tbl.TightPenalty = tight / tbl.GlobalBest
	} else {
		tbl.TightPenalty = math.Inf(1)
	}
	// Loosening a cap (rows and columns are ordered tightest to loosest)
	// must never worsen the best achievable third dimension.
	tbl.Monotone = true
	for i := range tbl.Cells {
		for j := range tbl.Cells[i] {
			if i > 0 && tbl.Cells[i][j].Best > tbl.Cells[i-1][j].Best+1e-9 {
				tbl.Monotone = false
			}
			if j > 0 && tbl.Cells[i][j].Best > tbl.Cells[i][j-1].Best+1e-9 {
				tbl.Monotone = false
			}
		}
	}
	return tbl
}

func fmtCap(v float64) string {
	if math.IsInf(v, 1) {
		return "none"
	}
	return fmt.Sprintf("%.1f", v)
}

// Render prints the three rotations of the conjecture grid.
func (r ConjectureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 3 conjecture grid over %d measured configurations\n", len(r.Points))
	fmt.Fprintf(&b, "Pareto frontier: %d configurations; single dominant configuration: %v\n\n", r.Frontier, r.Dominant)
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "Cap %s and %s → best achievable %s:\n", t.DimA, t.DimB, t.DimC)
		header := []string{fmt.Sprintf("%s cap \\ %s cap", t.DimA, t.DimB)}
		for _, cb := range t.CapsB {
			header = append(header, fmtCap(cb))
		}
		rows := make([][]string, 0, len(t.Cells))
		for i, row := range t.Cells {
			cells := []string{fmtCap(t.CapsA[i])}
			for _, c := range row {
				if math.IsInf(c.Best, 1) {
					cells = append(cells, "infeasible")
				} else {
					cells = append(cells, fmt.Sprintf("%.2f", c.Best))
				}
			}
			rows = append(rows, cells)
		}
		b.WriteString(table(header, rows))
		fmt.Fprintf(&b, "monotone=%v  floor under tightest caps = %.2fx the unconstrained best %s\n\n",
			t.Monotone, t.TightPenalty, t.DimC)
	}
	b.WriteString("Reading: loosening caps never hurts; tightening two overheads floors the third — the RUM Conjecture.\n")
	return b.String()
}
