// Package cobtree implements a static cache-oblivious search tree in the
// van Emde Boas layout (Frigo et al., FOCS 1999), the design Section 4 of
// the paper discusses as the alternative that "completely removes the
// memory hierarchy from the design space":
//
//   - searches touch O(log_B N) cache lines for *every* line size B
//     simultaneously, without knowing B — measured here by counting
//     distinct 64-byte lines per search;
//   - the price is exactly what the paper states: "a larger constant factor
//     in read performance" and "a larger memory overhead because they
//     require more pointers" (every node carries explicit child links,
//     where a sorted array needs none), and the structure is static —
//     "cache-oblivious designs are less tunable".
//
// The tree indexes a sorted record array (the base data); ranges scan the
// array after one tree search. Inserts and deletes are unsupported — the
// structure exists for the Section-4 ablation against a cache-aware binary
// search, not as a full access method.
package cobtree

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rum"
)

// node is one tree node in vEB order: the key, its record's position in the
// sorted base array, and explicit child indexes (-1 = none).
type node struct {
	key         core.Key
	pos         int32
	left, right int32
}

// nodeSize is the accounted footprint of one node: key (8) + array position
// (4) + two child indexes (8).
const nodeSize = 20

// Tree is a static cache-oblivious search tree. Not safe for concurrent
// use.
type Tree struct {
	nodes []node
	recs  []core.Record // sorted base data
	meter *rum.Meter
}

// Build constructs the tree over recs, which must be sorted by key and
// duplicate-free. A nil meter gets a private one.
func Build(recs []core.Record, meter *rum.Meter) (*Tree, error) {
	for i := 1; i < len(recs); i++ {
		if recs[i].Key <= recs[i-1].Key {
			return nil, fmt.Errorf("cobtree: input not sorted/unique at %d", i)
		}
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	t := &Tree{recs: recs, meter: meter}
	if len(recs) == 0 {
		return t, nil
	}

	// 1. Build an explicit balanced BST over the sorted positions.
	type bnode struct {
		pos         int32
		left, right *bnode
	}
	var build func(lo, hi int) *bnode
	var height func(lo, hi int) int
	build = func(lo, hi int) *bnode {
		if lo >= hi {
			return nil
		}
		mid := (lo + hi) / 2
		return &bnode{pos: int32(mid), left: build(lo, mid), right: build(mid+1, hi)}
	}
	height = func(lo, hi int) int {
		h := 0
		for n := hi - lo; n > 0; n /= 2 {
			h++
		}
		return h
	}
	root := build(0, len(recs))
	h := height(0, len(recs))

	// 2. Emit nodes in van Emde Boas order: the top half-height tree first,
	// then each bottom subtree left to right. layout(r, h) only ever
	// descends h levels, so applying it to the whole tree with the top
	// height lays out exactly the top tree.
	var order []*bnode
	var atDepth func(r *bnode, d int, out *[]*bnode)
	atDepth = func(r *bnode, d int, out *[]*bnode) {
		if r == nil {
			return
		}
		if d == 1 {
			*out = append(*out, r)
			return
		}
		atDepth(r.left, d-1, out)
		atDepth(r.right, d-1, out)
	}
	var layout func(r *bnode, h int)
	layout = func(r *bnode, h int) {
		if r == nil {
			return
		}
		if h == 1 {
			order = append(order, r)
			return
		}
		topH := h / 2
		bottomH := h - topH
		layout(r, topH)
		var frontier []*bnode
		atDepth(r, topH, &frontier)
		for _, f := range frontier {
			layout(f.left, bottomH)
			layout(f.right, bottomH)
		}
	}
	layout(root, h)

	// 3. Freeze into the flat array with translated child indexes.
	index := make(map[*bnode]int32, len(order))
	for i, b := range order {
		index[b] = int32(i)
	}
	t.nodes = make([]node, len(order))
	childIdx := func(b *bnode) int32 {
		if b == nil {
			return -1
		}
		return index[b]
	}
	for i, b := range order {
		t.nodes[i] = node{
			key:   recs[b.pos].Key,
			pos:   b.pos,
			left:  childIdx(b.left),
			right: childIdx(b.right),
		}
	}
	return t, nil
}

// Len returns the number of records.
func (t *Tree) Len() int { return len(t.recs) }

// Meter returns the RUM accounting.
func (t *Tree) Meter() *rum.Meter { return t.meter }

// Size reports the sorted base array as base bytes and the tree nodes (the
// "more pointers" of the paper) as auxiliary bytes.
func (t *Tree) Size() rum.SizeInfo {
	return rum.SizeInfo{
		BaseBytes: uint64(len(t.recs)) * core.RecordSize,
		AuxBytes:  uint64(len(t.nodes)) * nodeSize,
	}
}

// lineOf maps a node index to its 64-byte cache line.
func lineOf(i int32) int64 { return int64(i) * nodeSize / rum.LineSize }

// search descends to the array position of k (or -1), charging one line
// read per *distinct* cache line touched — the measurement the vEB layout
// exists to win.
func (t *Tree) search(k core.Key) (int32, int) {
	if len(t.nodes) == 0 {
		return -1, 0
	}
	lines := 0
	lastLine := int64(-1)
	i := int32(0)
	pos := int32(-1)
	for i >= 0 {
		if l := lineOf(i); l != lastLine {
			lines++
			lastLine = l
		}
		n := &t.nodes[i]
		switch {
		case k == n.key:
			pos = n.pos
			i = -1
		case k < n.key:
			i = n.left
		default:
			i = n.right
		}
	}
	t.meter.CountRead(rum.Aux, lines*rum.LineSize)
	return pos, lines
}

// Get returns the value for k. It reports the distinct cache lines touched
// through the meter.
func (t *Tree) Get(k core.Key) (core.Value, bool) {
	pos, _ := t.search(k)
	if pos < 0 {
		return 0, false
	}
	t.meter.CountRead(rum.Base, rum.LineCost(core.RecordSize))
	return t.recs[pos].Value, true
}

// SearchLines returns the distinct cache lines one search for k touches
// (ablation support).
func (t *Tree) SearchLines(k core.Key) int {
	_, lines := t.search(k)
	return lines
}

// Update overwrites the record for k in place in the base array (the one
// mutation a static index allows).
func (t *Tree) Update(k core.Key, v core.Value) bool {
	pos, _ := t.search(k)
	if pos < 0 {
		return false
	}
	t.recs[pos].Value = v
	t.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

// RangeScan finds lo via the tree and streams the base array to hi.
func (t *Tree) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	// Position of the first key >= lo via the sorted array (the tree finds
	// exact keys; range starts use one binary search charged at line cost).
	probes := 0
	i := sort.Search(len(t.recs), func(i int) bool {
		probes++
		return t.recs[i].Key >= lo
	})
	t.meter.CountRead(rum.Aux, probes*rum.LineSize)
	n := 0
	for ; i < len(t.recs) && t.recs[i].Key <= hi; i++ {
		t.meter.CountRead(rum.Base, core.RecordSize)
		n++
		if !emit(t.recs[i].Key, t.recs[i].Value) {
			break
		}
	}
	return n
}

// BinarySearchLines returns the distinct cache lines a plain binary search
// over the same sorted array touches for k — the cache-aware comparator of
// the Section-4 ablation.
func (t *Tree) BinarySearchLines(k core.Key) int {
	lines := 0
	lastLine := int64(-1)
	lo, hi := 0, len(t.recs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l := int64(mid) * core.RecordSize / rum.LineSize; l != lastLine {
			lines++
			lastLine = l
		}
		if t.recs[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lines
}
