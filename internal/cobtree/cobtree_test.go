package cobtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func sortedRecs(n int) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i * 3), Value: uint64(i)}
	}
	return recs
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]core.Record{{Key: 2}, {Key: 1}}, nil); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := Build([]core.Record{{Key: 1}, {Key: 1}}, nil); err == nil {
		t.Fatal("duplicate input accepted")
	}
	tr, err := Build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("empty tree found a key")
	}
}

func TestGetFindsEverything(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 100, 4097} {
		recs := sortedRecs(n)
		tr, err := Build(recs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			v, ok := tr.Get(r.Key)
			if !ok || v != r.Value {
				t.Fatalf("n=%d: Get(%d) = %d,%v", n, r.Key, v, ok)
			}
		}
		// Misses between keys.
		for _, r := range recs {
			if _, ok := tr.Get(r.Key + 1); ok {
				t.Fatalf("n=%d: phantom %d", n, r.Key+1)
			}
		}
	}
}

func TestLayoutIsPermutationProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		seen := map[uint64]bool{}
		var recs []core.Record
		for _, r := range raw {
			k := uint64(r)
			if !seen[k] {
				seen[k] = true
				recs = append(recs, core.Record{Key: k, Value: k})
			}
		}
		// sort
		for i := 1; i < len(recs); i++ {
			for j := i; j > 0 && recs[j].Key < recs[j-1].Key; j-- {
				recs[j], recs[j-1] = recs[j-1], recs[j]
			}
		}
		tr, err := Build(recs, nil)
		if err != nil {
			return false
		}
		if len(tr.nodes) != len(recs) {
			return false
		}
		// Every record position appears exactly once in the layout.
		posSeen := map[int32]bool{}
		for _, n := range tr.nodes {
			if posSeen[n.pos] {
				return false
			}
			posSeen[n.pos] = true
		}
		// And every key is findable.
		for _, r := range recs {
			if _, ok := tr.Get(r.Key); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdate(t *testing.T) {
	tr, err := Build(sortedRecs(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Update(30, 999) {
		t.Fatal("update")
	}
	if v, _ := tr.Get(30); v != 999 {
		t.Fatal("update not visible")
	}
	if tr.Update(31, 0) {
		t.Fatal("phantom update")
	}
}

func TestRangeScan(t *testing.T) {
	tr, err := Build(sortedRecs(1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	prev, first := uint64(0), true
	n := tr.RangeScan(100, 200, func(k core.Key, v core.Value) bool {
		if k < 100 || k > 200 {
			t.Fatalf("out of range %d", k)
		}
		if !first && k <= prev {
			t.Fatal("not ascending")
		}
		first, prev = false, k
		return true
	})
	if n != 34 { // keys 102..198 step 3 = 33, plus... 102,105..198: (198-102)/3+1 = 33
		if n != 33 {
			t.Fatalf("emitted %d", n)
		}
	}
}

// TestFewerLinesThanBinarySearch: the point of the vEB layout — searches
// touch fewer distinct cache lines than a binary search over the same data.
func TestFewerLinesThanBinarySearch(t *testing.T) {
	const n = 1 << 17
	tr, err := Build(sortedRecs(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	vebTotal, binTotal := 0, 0
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(n)) * 3
		vebTotal += tr.SearchLines(k)
		binTotal += tr.BinarySearchLines(k)
	}
	if vebTotal >= binTotal {
		t.Fatalf("vEB touched %d lines vs binary search %d", vebTotal, binTotal)
	}
	t.Logf("avg lines/search: vEB %.2f, binary %.2f (%.0f%% saved)",
		float64(vebTotal)/2000, float64(binTotal)/2000,
		100*(1-float64(vebTotal)/float64(binTotal)))
}

// TestSpaceOverheadOfPointers: the paper's flip side — the cache-oblivious
// tree stores pointers a sorted array does not.
func TestSpaceOverheadOfPointers(t *testing.T) {
	tr, err := Build(sortedRecs(10000), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Size()
	if s.AuxBytes == 0 {
		t.Fatal("no pointer overhead recorded")
	}
	if s.SpaceAmplification() < 2.0 {
		t.Fatalf("expected >2x space vs the raw array, got %v", s.SpaceAmplification())
	}
}

func TestMeterCharges(t *testing.T) {
	tr, err := Build(sortedRecs(1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Get(300)
	m := tr.Meter().Snapshot()
	if m.AuxRead == 0 || m.BaseRead == 0 {
		t.Fatalf("charges: %+v", m)
	}
}
