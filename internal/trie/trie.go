// Package trie implements a fixed-stride radix trie over uint64 keys
// (Fredkin, CACM 1960), a read-optimized structure of Figure 1 with
// *fixed* (not logarithmic) access cost: every lookup walks exactly
// 64/stride levels regardless of N. The price is space — every allocated
// node is a full 2^stride pointer array — making the trie a sharp example of
// buying read performance with memory.
//
// The stride is tunable (core.Tunable): wider strides shorten the path
// (lower RO) and inflate node fan-out arrays (higher MO).
package trie

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rum"
)

const pointerSize = 8

type node struct {
	children []*node      // interior level
	leaves   []core.Value // last level
	present  []bool       // value occupancy at the last level
	n        int          // live entries in this node
}

// Trie is a radix trie. Not safe for concurrent use.
type Trie struct {
	root   *node
	stride uint // bits per level
	levels uint
	count  int
	nodes  int
	meter  *rum.Meter
}

// New creates a trie with the given stride in bits (must divide 64;
// 0 defaults to 8). A nil meter gets a private one.
func New(stride uint, meter *rum.Meter) (*Trie, error) {
	if stride == 0 {
		stride = 8
	}
	if 64%stride != 0 {
		return nil, fmt.Errorf("trie: stride %d must divide 64", stride)
	}
	if stride > 16 {
		return nil, fmt.Errorf("trie: stride %d too wide (max 16)", stride)
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	t := &Trie{stride: stride, levels: 64 / stride, meter: meter}
	t.root = t.newNode(0)
	return t, nil
}

func (t *Trie) fanout() int { return 1 << t.stride }

func (t *Trie) newNode(level uint) *node {
	t.nodes++
	if level == t.levels-1 {
		return &node{leaves: make([]core.Value, t.fanout()), present: make([]bool, t.fanout())}
	}
	return &node{children: make([]*node, t.fanout())}
}

// nodeBytes is the accounted footprint of one node.
func (t *Trie) nodeBytes() uint64 { return uint64(t.fanout()) * pointerSize }

// slot extracts the child index for key at the given level (level 0 uses the
// most significant bits, so in-order traversal yields ascending keys).
func (t *Trie) slot(k core.Key, level uint) int {
	shift := 64 - t.stride*(level+1)
	return int((k >> shift) & (uint64(t.fanout()) - 1))
}

// Name identifies the trie and its stride.
func (t *Trie) Name() string { return fmt.Sprintf("trie(stride=%d)", t.stride) }

// Len returns the number of records.
func (t *Trie) Len() int { return t.count }

// Nodes returns the number of allocated nodes.
func (t *Trie) Nodes() int { return t.nodes }

// Meter returns the RUM accounting.
func (t *Trie) Meter() *rum.Meter { return t.meter }

// Size reports records as base bytes and all node arrays beyond them as
// auxiliary bytes.
func (t *Trie) Size() rum.SizeInfo {
	total := uint64(t.nodes) * t.nodeBytes()
	base := uint64(t.count) * core.RecordSize
	aux := uint64(0)
	if total > base {
		aux = total - base
	}
	return rum.SizeInfo{BaseBytes: base, AuxBytes: aux}
}

// walk descends to the leaf node for k, charging one pointer read per level,
// and returns the leaf node and slot, or nil when the path is missing.
func (t *Trie) walk(k core.Key) (*node, int) {
	n := t.root
	for level := uint(0); level < t.levels-1; level++ {
		t.meter.CountRead(rum.Aux, rum.LineSize)
		n = n.children[t.slot(k, level)]
		if n == nil {
			return nil, 0
		}
	}
	t.meter.CountRead(rum.Aux, rum.LineSize)
	return n, t.slot(k, t.levels-1)
}

// Get walks exactly 64/stride levels.
func (t *Trie) Get(k core.Key) (core.Value, bool) {
	n, i := t.walk(k)
	if n == nil || !n.present[i] {
		return 0, false
	}
	t.meter.CountRead(rum.Base, rum.LineCost(core.RecordSize))
	return n.leaves[i], true
}

// Insert adds a record, materializing path nodes as needed.
func (t *Trie) Insert(k core.Key, v core.Value) error {
	n := t.root
	for level := uint(0); level < t.levels-1; level++ {
		t.meter.CountRead(rum.Aux, rum.LineSize)
		s := t.slot(k, level)
		if n.children[s] == nil {
			n.children[s] = t.newNode(level + 1)
			n.n++
			t.meter.CountWrite(rum.Aux, rum.LineSize)
		}
		n = n.children[s]
	}
	i := t.slot(k, t.levels-1)
	if n.present[i] {
		return core.ErrKeyExists
	}
	n.present[i] = true
	n.leaves[i] = v
	n.n++
	t.count++
	t.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return nil
}

// Update overwrites the record for k in place.
func (t *Trie) Update(k core.Key, v core.Value) bool {
	n, i := t.walk(k)
	if n == nil || !n.present[i] {
		return false
	}
	n.leaves[i] = v
	t.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

// Delete removes the record for k and prunes emptied path nodes.
func (t *Trie) Delete(k core.Key) bool {
	if !t.deleteRec(t.root, k, 0) {
		return false
	}
	t.count--
	t.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

func (t *Trie) deleteRec(n *node, k core.Key, level uint) bool {
	s := t.slot(k, level)
	t.meter.CountRead(rum.Aux, rum.LineSize)
	if level == t.levels-1 {
		if !n.present[s] {
			return false
		}
		n.present[s] = false
		n.leaves[s] = 0
		n.n--
		return true
	}
	child := n.children[s]
	if child == nil {
		return false
	}
	if !t.deleteRec(child, k, level+1) {
		return false
	}
	if child.n == 0 {
		n.children[s] = nil
		n.n--
		t.nodes--
		t.meter.CountWrite(rum.Aux, rum.LineSize)
	}
	return true
}

// RangeScan emits records with lo <= key <= hi in ascending key order by
// in-order traversal.
func (t *Trie) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	emitted := 0
	t.scanRec(t.root, 0, 0, lo, hi, &emitted, emit)
	return emitted
}

// scanRec walks the subtree under n whose key prefix is prefix at the given
// level, pruned to [lo, hi]. It returns false to stop the traversal.
func (t *Trie) scanRec(n *node, prefix uint64, level uint, lo, hi core.Key, emitted *int, emit func(core.Key, core.Value) bool) bool {
	shift := 64 - t.stride*(level+1)
	span := uint64(1)<<shift - 1 // key span below one slot at this level
	for s := 0; s < t.fanout(); s++ {
		first := prefix | uint64(s)<<shift
		last := first | span
		if last < lo {
			continue
		}
		if first > hi {
			return true
		}
		t.meter.CountRead(rum.Aux, pointerSize)
		if level == t.levels-1 {
			if !n.present[s] {
				continue
			}
			t.meter.CountRead(rum.Base, core.RecordSize)
			*emitted++
			if !emit(first, n.leaves[s]) {
				return false
			}
			continue
		}
		child := n.children[s]
		if child == nil {
			continue
		}
		if !t.scanRec(child, first, level+1, lo, hi, emitted, emit) {
			return false
		}
	}
	return true
}

// BulkLoad replaces the contents with the key-sorted recs.
func (t *Trie) BulkLoad(recs []core.Record) error {
	t.root = t.newNode(0)
	t.nodes = 1
	t.count = 0
	for _, r := range recs {
		if err := t.Insert(r.Key, r.Value); err != nil {
			return err
		}
	}
	return nil
}

// Knobs exposes the stride (core.Tunable).
func (t *Trie) Knobs() []core.Knob {
	return []core.Knob{{
		Name: "stride", Min: 2, Max: 16, Current: float64(t.stride),
		Doc: "bits per level; wider = shorter fixed path (lower RO) and larger node arrays (higher MO)",
	}}
}

// SetKnob changes the stride (core.Tunable), rebuilding the trie.
func (t *Trie) SetKnob(name string, value float64) error {
	if name != "stride" {
		return fmt.Errorf("trie: unknown knob %q", name)
	}
	stride := uint(value)
	if 64%stride != 0 || stride > 16 || stride < 2 {
		return fmt.Errorf("trie: invalid stride %d", stride)
	}
	recs := make([]core.Record, 0, t.count)
	t.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		recs = append(recs, core.Record{Key: k, Value: v})
		return true
	})
	t.stride = stride
	t.levels = 64 / stride
	return t.BulkLoad(recs)
}
