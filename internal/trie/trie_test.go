package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func newTrie(t *testing.T, stride uint) *Trie {
	t.Helper()
	tr, err := New(stride, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(7, nil); err == nil {
		t.Fatal("stride 7 accepted (does not divide 64)")
	}
	if _, err := New(32, nil); err == nil {
		t.Fatal("stride 32 accepted (too wide)")
	}
	if tr, err := New(0, nil); err != nil || tr.stride != 8 {
		t.Fatal("default stride")
	}
}

func TestBasicOps(t *testing.T) {
	tr := newTrie(t, 8)
	if _, ok := tr.Get(1); ok {
		t.Fatal("get on empty")
	}
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 11); err != core.ErrKeyExists {
		t.Fatalf("dup: %v", err)
	}
	if v, ok := tr.Get(1); !ok || v != 10 {
		t.Fatal("get")
	}
	if !tr.Update(1, 20) {
		t.Fatal("update")
	}
	if !tr.Delete(1) {
		t.Fatal("delete")
	}
	if tr.Delete(1) || tr.Len() != 0 {
		t.Fatal("state after delete")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	for _, stride := range []uint{4, 8} {
		tr := newTrie(t, stride)
		rng := rand.New(rand.NewSource(int64(stride)))
		ref := map[uint64]uint64{}
		for i := 0; i < 6000; i++ {
			k := uint64(rng.Int63()) // full 63-bit keys
			if rng.Intn(2) == 0 && len(ref) > 0 {
				// Revisit an existing key half the time.
				for kk := range ref {
					k = kk
					break
				}
			}
			switch rng.Intn(4) {
			case 0:
				err := tr.Insert(k, k)
				if _, ok := ref[k]; ok != (err == core.ErrKeyExists) {
					t.Fatalf("stride %d: insert consistency", stride)
				}
				if err == nil {
					ref[k] = k
				}
			case 1:
				v, ok := tr.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					t.Fatalf("stride %d: get", stride)
				}
			case 2:
				if tr.Update(k, 99) {
					ref[k] = 99
				}
			case 3:
				_, want := ref[k]
				if tr.Delete(k) != want {
					t.Fatalf("stride %d: delete", stride)
				}
				delete(ref, k)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("stride %d: len", stride)
			}
		}
	}
}

func TestScanAscendingProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tr, err := New(8, nil)
		if err != nil {
			return false
		}
		for _, k := range keys {
			_ = tr.Insert(k, k)
		}
		prev, first, ok := uint64(0), true, true
		tr.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
			if !first && k <= prev {
				ok = false
				return false
			}
			first, prev = false, k
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := newTrie(t, 8)
	for k := uint64(0); k < 1000; k += 3 {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	n := tr.RangeScan(100, 200, func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	want := 0
	for k := uint64(0); k < 1000; k += 3 {
		if k >= 100 && k <= 200 {
			want++
		}
	}
	if n != want {
		t.Fatalf("emitted %d want %d (got %v)", n, want, got)
	}
	if n := tr.RangeScan(0, ^uint64(0), func(core.Key, core.Value) bool { return false }); n != 1 {
		t.Fatalf("early stop: %d", n)
	}
}

func TestHighKeysScan(t *testing.T) {
	tr := newTrie(t, 8)
	keys := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63, 1<<63 - 1}
	for _, k := range keys {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	tr.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		got++
		return true
	})
	if got != len(keys) {
		t.Fatalf("scan found %d of %d boundary keys", got, len(keys))
	}
}

func TestDeletePrunesNodes(t *testing.T) {
	tr := newTrie(t, 8)
	base := tr.Nodes()
	for k := uint64(0); k < 100; k++ {
		if err := tr.Insert(k<<40, k); err != nil { // scattered: private paths
			t.Fatal(err)
		}
	}
	grown := tr.Nodes()
	if grown <= base {
		t.Fatal("no nodes allocated")
	}
	for k := uint64(0); k < 100; k++ {
		if !tr.Delete(k << 40) {
			t.Fatal("delete")
		}
	}
	if tr.Nodes() != base {
		t.Fatalf("nodes not pruned: %d -> %d (base %d)", grown, tr.Nodes(), base)
	}
}

func TestFixedReadCost(t *testing.T) {
	// The trie's defining property: Get cost is independent of N.
	cost := func(n int) uint64 {
		tr, _ := New(8, nil)
		for k := 0; k < n; k++ {
			_ = tr.Insert(uint64(k)*2654435761, uint64(k))
		}
		m0 := tr.Meter().Snapshot()
		for k := 0; k < 100; k++ {
			tr.Get(uint64(k) * 2654435761)
		}
		return tr.Meter().Diff(m0).PhysicalRead()
	}
	small, large := cost(100), cost(10000)
	if small != large {
		t.Fatalf("read cost varied with N: %d vs %d", small, large)
	}
}

func TestStrideKnobRebuilds(t *testing.T) {
	tr := newTrie(t, 8)
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.SetKnob("stride", 4); err != nil {
		t.Fatal(err)
	}
	if tr.stride != 4 || tr.Len() != 500 {
		t.Fatalf("stride %d len %d", tr.stride, tr.Len())
	}
	for k := uint64(0); k < 500; k += 13 {
		if v, ok := tr.Get(k); !ok || v != k*2 {
			t.Fatalf("Get(%d) after rebuild", k)
		}
	}
	if err := tr.SetKnob("stride", 7); err == nil {
		t.Fatal("invalid stride accepted")
	}
	if err := tr.SetKnob("x", 4); err == nil {
		t.Fatal("unknown knob accepted")
	}
}

func TestWiderStrideLowersReadCost(t *testing.T) {
	cost := func(stride uint) uint64 {
		tr, _ := New(stride, nil)
		for k := uint64(0); k < 2000; k++ {
			_ = tr.Insert(k, k)
		}
		m0 := tr.Meter().Snapshot()
		for k := uint64(0); k < 200; k++ {
			tr.Get(k)
		}
		return tr.Meter().Diff(m0).PhysicalRead()
	}
	if narrow, wide := cost(4), cost(8); wide >= narrow {
		t.Fatalf("wider stride should read less: %d vs %d", wide, narrow)
	}
	// And cost more space (for clustered low keys the wide root array
	// dominates).
	a, _ := New(4, nil)
	b, _ := New(8, nil)
	for k := uint64(0); k < 100; k++ {
		_ = a.Insert(k<<40, k)
		_ = b.Insert(k<<40, k)
	}
	if b.Size().Total() <= a.Size().Total() {
		t.Fatalf("wider stride should cost more space: %d vs %d", b.Size().Total(), a.Size().Total())
	}
}

func TestBulkLoad(t *testing.T) {
	tr := newTrie(t, 8)
	recs := make([]core.Record, 300)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i * 5), Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 300 {
		t.Fatal("len")
	}
	if v, ok := tr.Get(45); !ok || v != 9 {
		t.Fatal("get after bulk")
	}
}
