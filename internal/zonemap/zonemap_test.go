package zonemap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestBasicOps(t *testing.T) {
	m := New(8, nil)
	if _, ok := m.Get(1); ok {
		t.Fatal("get on empty")
	}
	if err := m.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(1, 11); err != core.ErrKeyExists {
		t.Fatalf("dup: %v", err)
	}
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatal("get")
	}
	if !m.Update(1, 20) {
		t.Fatal("update")
	}
	if m.Update(2, 0) {
		t.Fatal("phantom update")
	}
	if !m.Delete(1) {
		t.Fatal("delete")
	}
	if m.Delete(1) || m.Len() != 0 {
		t.Fatal("state after delete")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	m := New(16, nil)
	rng := rand.New(rand.NewSource(8))
	ref := map[uint64]uint64{}
	for i := 0; i < 12000; i++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(4) {
		case 0:
			err := m.Insert(k, k*2)
			if _, ok := ref[k]; ok != (err == core.ErrKeyExists) {
				t.Fatalf("op %d: insert consistency on %d (err=%v)", i, k, err)
			}
			if err == nil {
				ref[k] = k * 2
			}
		case 1:
			v, ok := m.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		case 2:
			nv := rng.Uint64()
			if m.Update(k, nv) {
				ref[k] = nv
			}
		case 3:
			_, want := ref[k]
			if m.Delete(k) != want {
				t.Fatalf("op %d: delete(%d)", i, k)
			}
			delete(ref, k)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: len %d want %d", i, m.Len(), len(ref))
		}
	}
	got := map[uint64]uint64{}
	m.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		got[k] = v
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("scan %d want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("scan[%d]", k)
		}
	}
}

func TestZonesStayDisjointProperty(t *testing.T) {
	f := func(keys []uint32) bool {
		m := New(4, nil)
		for _, k := range keys {
			_ = m.Insert(uint64(k), 1)
		}
		// Zones must be sorted by min and non-overlapping.
		for i := 1; i < len(m.zones); i++ {
			if m.zones[i].min <= m.zones[i-1].max {
				return false
			}
		}
		// Every record must lie inside its zone bounds.
		for _, z := range m.zones {
			for _, r := range z.recs {
				if r.Key < z.min || r.Key > z.max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScanOrderedAndBounded(t *testing.T) {
	m := New(8, nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		_ = m.Insert(uint64(rng.Intn(10000)), uint64(i))
	}
	prev, first := uint64(0), true
	m.RangeScan(2000, 8000, func(k core.Key, v core.Value) bool {
		if k < 2000 || k > 8000 {
			t.Fatalf("out of range %d", k)
		}
		if !first && k <= prev {
			t.Fatal("not ascending")
		}
		first, prev = false, k
		return true
	})
}

func TestPruningSavesReads(t *testing.T) {
	m := New(128, nil)
	recs := make([]core.Record, 1<<14)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
	}
	if err := m.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	m0 := m.Meter().Snapshot()
	m.RangeScan(1000, 1100, func(core.Key, core.Value) bool { return true })
	read := m.Meter().Diff(m0).PhysicalRead()
	full := uint64(len(recs) * core.RecordSize)
	if read > full/10 {
		t.Fatalf("pruned scan read %d of %d", read, full)
	}
	// Point-query pruning on an absent key outside every zone bound.
	m0 = m.Meter().Snapshot()
	if _, ok := m.Get(1 << 40); ok {
		t.Fatal("phantom get")
	}
	if read := m.Meter().Diff(m0).BaseRead; read != 0 {
		t.Fatalf("out-of-bounds get read %d base bytes", read)
	}
}

func TestSmallerPargerIndexTradeoff(t *testing.T) {
	fine := New(16, nil)
	coarse := New(1024, nil)
	recs := make([]core.Record, 1<<13)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
	}
	if err := fine.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := coarse.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	// Finer partitions: bigger index, smaller per-query base reads.
	if fine.Size().AuxBytes <= coarse.Size().AuxBytes {
		t.Fatal("finer partitions should cost more index space")
	}
	f0, c0 := fine.Meter().Snapshot(), coarse.Meter().Snapshot()
	for k := uint64(0); k < 100; k++ {
		fine.Get(k * 80)
		coarse.Get(k * 80)
	}
	fineBase := fine.Meter().Diff(f0).BaseRead
	coarseBase := coarse.Meter().Diff(c0).BaseRead
	if fineBase >= coarseBase {
		t.Fatalf("finer partitions should read less base data: %d vs %d", fineBase, coarseBase)
	}
}

func TestSplitMaintainsLookup(t *testing.T) {
	m := New(4, nil) // tiny partitions split often
	for k := uint64(0); k < 500; k++ {
		if err := m.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if m.Zones() < 10 {
		t.Fatalf("expected many zones, got %d", m.Zones())
	}
	for k := uint64(0); k < 500; k++ {
		if v, ok := m.Get(k); !ok || v != k+1 {
			t.Fatalf("Get(%d) after splits", k)
		}
	}
}

func TestKnobRepartitions(t *testing.T) {
	m := New(8, nil)
	for k := uint64(0); k < 300; k++ {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	zonesBefore := m.Zones()
	if err := m.SetKnob("partition_size", 64); err != nil {
		t.Fatal(err)
	}
	if m.Zones() >= zonesBefore {
		t.Fatalf("coarser partitions should mean fewer zones: %d -> %d", zonesBefore, m.Zones())
	}
	for k := uint64(0); k < 300; k += 17 {
		if v, ok := m.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) after repartition", k)
		}
	}
	if err := m.SetKnob("partition_size", 1); err == nil {
		t.Fatal("invalid partition accepted")
	}
	if err := m.SetKnob("zzz", 8); err == nil {
		t.Fatal("unknown knob accepted")
	}
}

func TestBulkLoadPacksExactly(t *testing.T) {
	m := New(100, nil)
	recs := make([]core.Record, 1000)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
	}
	if err := m.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if m.Zones() != 10 {
		t.Fatalf("zones %d", m.Zones())
	}
	if m.Size().SpaceAmplification() > 1.02 {
		t.Fatalf("MO %v", m.Size().SpaceAmplification())
	}
}
