// Package zonemap implements zone maps (a.k.a. small materialized
// aggregates / block-range metadata), the Table-1 sparse index: the base
// data is split into partitions of P records and only a per-partition
// [min, max] summary is kept. The index is tiny — the space-optimized right
// corner of Figure 1 — while every query must scan the summaries (O(N/P/B))
// plus the qualifying partitions.
//
// Partitions hold clustered, disjoint key ranges. Records inside a partition
// are unordered (appends are cheap); range scans sort each qualifying
// partition before emitting, which costs computation, not I/O — the paper's
// "use computation and knowledge about the data to reduce the RUM
// overheads".
package zonemap

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rum"
)

// zoneMetaSize is the accounted footprint of one zone summary:
// min (8) + max (8) + count (4) + partition pointer (4).
const zoneMetaSize = 24

type zone struct {
	min, max core.Key
	recs     []core.Record
}

// Map is a zone-mapped clustered store. Not safe for concurrent use.
type Map struct {
	zones     []*zone
	partition int // target records per partition (P)
	count     int
	meter     *rum.Meter
}

// New creates an empty map with partitions of P records (default 128).
// A nil meter gets a private one.
func New(p int, meter *rum.Meter) *Map {
	if p < 2 {
		p = 128
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	return &Map{partition: p, meter: meter}
}

// Name identifies the map and its partition size.
func (m *Map) Name() string { return fmt.Sprintf("zonemap(P=%d)", m.partition) }

// Len returns the number of records.
func (m *Map) Len() int { return m.count }

// Zones returns the number of partitions.
func (m *Map) Zones() int { return len(m.zones) }

// Meter returns the RUM accounting.
func (m *Map) Meter() *rum.Meter { return m.meter }

// Size reports records as base bytes and the zone summaries as auxiliary
// bytes — the near-zero index footprint that defines sparse indexes.
func (m *Map) Size() rum.SizeInfo {
	return rum.SizeInfo{
		BaseBytes: uint64(m.count) * core.RecordSize,
		AuxBytes:  uint64(len(m.zones)) * zoneMetaSize,
	}
}

// scanMeta charges the linear pass over every zone summary — the O(N/P/B)
// term every operation pays.
func (m *Map) scanMeta() {
	m.meter.CountRead(rum.Aux, len(m.zones)*zoneMetaSize)
}

// zoneFor returns the index of the zone whose range covers k, or the zone k
// should extend, or -1 when the map is empty. Charges the metadata scan.
func (m *Map) zoneFor(k core.Key) int {
	m.scanMeta()
	if len(m.zones) == 0 {
		return -1
	}
	// Zones are disjoint and sorted by min; pick the last zone with min <= k.
	i := sort.Search(len(m.zones), func(i int) bool { return m.zones[i].min > k }) - 1
	if i < 0 {
		return 0 // k precedes every zone: extend the first
	}
	return i
}

// scanZone charges reading a whole partition and returns the position of k
// in it, or -1.
func (m *Map) scanZone(z *zone, k core.Key) int {
	m.meter.CountRead(rum.Base, len(z.recs)*core.RecordSize)
	for i, r := range z.recs {
		if r.Key == k {
			return i
		}
	}
	return -1
}

// Get scans the summaries, then the single qualifying partition.
func (m *Map) Get(k core.Key) (core.Value, bool) {
	i := m.zoneFor(k)
	if i < 0 {
		return 0, false
	}
	z := m.zones[i]
	if k < z.min || k > z.max {
		return 0, false // pruned by the summary: no partition read at all
	}
	if j := m.scanZone(z, k); j >= 0 {
		return z.recs[j].Value, true
	}
	return 0, false
}

// Insert appends the record to its covering partition, splitting the
// partition when it exceeds 2P records.
func (m *Map) Insert(k core.Key, v core.Value) error {
	i := m.zoneFor(k)
	if i < 0 {
		z := &zone{min: k, max: k, recs: make([]core.Record, 0, m.partition)}
		z.recs = append(z.recs, core.Record{Key: k, Value: v})
		m.zones = append(m.zones, z)
		m.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
		m.meter.CountWrite(rum.Aux, rum.LineCost(zoneMetaSize))
		m.count++
		return nil
	}
	z := m.zones[i]
	if k >= z.min && k <= z.max {
		if m.scanZone(z, k) >= 0 {
			return core.ErrKeyExists
		}
	}
	z.recs = append(z.recs, core.Record{Key: k, Value: v})
	metaDirty := false
	if k < z.min {
		z.min = k
		metaDirty = true
	}
	if k > z.max {
		z.max = k
		metaDirty = true
	}
	m.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	if metaDirty {
		m.meter.CountWrite(rum.Aux, rum.LineCost(zoneMetaSize))
	}
	m.count++
	if len(z.recs) > 2*m.partition {
		m.splitZone(i)
	}
	return nil
}

// splitZone sorts an oversized partition and divides it into two disjoint
// halves, charging the rewrite.
func (m *Map) splitZone(i int) {
	z := m.zones[i]
	sort.Slice(z.recs, func(a, b int) bool { return z.recs[a].Key < z.recs[b].Key })
	mid := len(z.recs) / 2
	rightRecs := make([]core.Record, len(z.recs)-mid, m.partition*2)
	copy(rightRecs, z.recs[mid:])
	right := &zone{min: rightRecs[0].Key, max: z.max, recs: rightRecs}
	z.max = z.recs[mid-1].Key
	z.recs = z.recs[:mid]
	m.zones = append(m.zones, nil)
	copy(m.zones[i+2:], m.zones[i+1:])
	m.zones[i+1] = right
	m.meter.CountWrite(rum.Base, (len(z.recs)+len(right.recs))*core.RecordSize)
	m.meter.CountWrite(rum.Aux, 2*zoneMetaSize)
}

// Update overwrites the record in its partition.
func (m *Map) Update(k core.Key, v core.Value) bool {
	i := m.zoneFor(k)
	if i < 0 {
		return false
	}
	z := m.zones[i]
	if k < z.min || k > z.max {
		return false
	}
	j := m.scanZone(z, k)
	if j < 0 {
		return false
	}
	z.recs[j].Value = v
	m.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

// Delete removes the record, filling the hole with the partition's last
// record. Zone bounds are left conservative (never re-tightened), which
// keeps them correct.
func (m *Map) Delete(k core.Key) bool {
	i := m.zoneFor(k)
	if i < 0 {
		return false
	}
	z := m.zones[i]
	if k < z.min || k > z.max {
		return false
	}
	j := m.scanZone(z, k)
	if j < 0 {
		return false
	}
	last := len(z.recs) - 1
	z.recs[j] = z.recs[last]
	z.recs = z.recs[:last]
	m.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	m.count--
	return true
}

// RangeScan scans the summaries, prunes non-qualifying partitions, and
// emits qualifying partitions in ascending key order (each partition is
// sorted in memory before emission).
func (m *Map) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	m.scanMeta()
	emitted := 0
	for _, z := range m.zones {
		if z.max < lo || z.min > hi {
			continue
		}
		m.meter.CountRead(rum.Base, len(z.recs)*core.RecordSize)
		tmp := make([]core.Record, 0, len(z.recs))
		for _, r := range z.recs {
			if r.Key >= lo && r.Key <= hi {
				tmp = append(tmp, r)
			}
		}
		sort.Slice(tmp, func(a, b int) bool { return tmp[a].Key < tmp[b].Key })
		for _, r := range tmp {
			emitted++
			if !emit(r.Key, r.Value) {
				return emitted
			}
		}
	}
	return emitted
}

// BulkLoad replaces the contents with the key-sorted recs, packing
// partitions of exactly P records.
func (m *Map) BulkLoad(recs []core.Record) error {
	m.zones = nil
	m.count = len(recs)
	for start := 0; start < len(recs); start += m.partition {
		end := start + m.partition
		if end > len(recs) {
			end = len(recs)
		}
		part := make([]core.Record, end-start, m.partition)
		copy(part, recs[start:end])
		z := &zone{min: part[0].Key, max: part[len(part)-1].Key, recs: part}
		m.zones = append(m.zones, z)
	}
	m.meter.CountWrite(rum.Base, len(recs)*core.RecordSize)
	m.meter.CountWrite(rum.Aux, len(m.zones)*zoneMetaSize)
	return nil
}

// Knobs exposes the partition size (core.Tunable).
func (m *Map) Knobs() []core.Knob {
	return []core.Knob{{
		Name: "partition_size", Min: 2, Max: 1 << 16, Current: float64(m.partition),
		Doc: "records per partition P; smaller = more summaries (higher MO, lower RO per query), larger = tiny index but bigger scans",
	}}
}

// SetKnob adjusts the partition size (core.Tunable) and repartitions the
// data, charging the rewrite.
func (m *Map) SetKnob(name string, value float64) error {
	if name != "partition_size" {
		return fmt.Errorf("zonemap: unknown knob %q", name)
	}
	p := int(value)
	if p < 2 {
		return fmt.Errorf("zonemap: partition_size must be >= 2")
	}
	recs := make([]core.Record, 0, m.count)
	for _, z := range m.zones {
		recs = append(recs, z.recs...)
	}
	m.meter.CountRead(rum.Base, len(recs)*core.RecordSize)
	sort.Slice(recs, func(a, b int) bool { return recs[a].Key < recs[b].Key })
	m.partition = p
	return m.BulkLoad(recs)
}
