package btree

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
)

// The tree keeps its root, height, and count in memory only — there is no
// superblock and no write-ahead log. Recover therefore rebuilds the handle
// from the page images alone: it classifies every live page, finds the one
// node no internal node references (the root), and walks the candidate tree
// validating everything the layout promises — kinds, entry counts, key
// order, separator bounds, uniform depth, and the leaf chain. Anything
// inconsistent makes Recover fail loudly rather than adopt a structure that
// could serve garbage.
//
// The durability contract this supports is faults.Lossy: pages flushed
// before the crash survive, dirty pages are gone, and a crash that lands
// mid-split (some pages of the split flushed, others not) is detected by
// validation and reported as an error. Recovering acknowledged-but-unflushed
// data would need a WAL, which the paper's cost model has no column for.

// pageInfo is the classification of one live page during recovery.
type pageInfo struct {
	kind     byte
	count    int
	link     storage.PageID   // leaf: next leaf; internal: leftmost child
	children []storage.PageID // internal only: link + every entry child
	seps     []core.Key       // internal only: every separator key
	firstKey core.Key
	lastKey  core.Key
}

// Recover rebuilds a tree handle from the surviving device image under
// pool. On success the returned tree serves exactly the records of the
// flushed pages; live pages not reachable from the adopted root (orphans of
// an interrupted split, zeroed allocations) are freed. On any structural
// inconsistency — no root candidate, several plausible roots, a cycle, a
// broken leaf chain, out-of-order keys — it returns an error and frees
// nothing.
func Recover(pool *storage.BufferPool, cfg Config) (*Tree, error) {
	t := &Tree{pool: pool, cfg: cfg}
	if err := t.applyConfig(); err != nil {
		return nil, err
	}
	dev := pool.Device()

	// Pass 1: classify every live page.
	info, err := classifyPages(pool)
	if err != nil {
		return nil, err
	}

	// Pass 2: root candidates are valid nodes no internal node points to.
	childRefs := make(map[storage.PageID]int)
	for _, pi := range info {
		if pi.kind == kindInternal {
			for _, c := range pi.children {
				childRefs[c]++
			}
		}
	}
	var candidates []storage.PageID
	for _, id := range dev.LivePageIDs() { // LivePageIDs is sorted: stable order
		if pi := info[id]; pi.kind != 0 && childRefs[id] == 0 {
			candidates = append(candidates, id)
		}
	}

	// Pass 3: a candidate must validate as a complete tree.
	var adopted storage.PageID
	var adoptedWalk *walkResult
	for _, cand := range candidates {
		w, err := validateTree(cand, info)
		if err != nil {
			continue
		}
		if adoptedWalk != nil {
			return nil, fmt.Errorf("btree: recovery found rival roots %d and %d — image is ambiguous", adopted, cand)
		}
		adopted, adoptedWalk = cand, w
	}
	if adoptedWalk == nil {
		return nil, fmt.Errorf("btree: recovery found no coherent tree among %d live pages (%d root candidates)", len(info), len(candidates))
	}

	// Adopt, then garbage-collect every live page outside the tree.
	t.root = adopted
	t.height = adoptedWalk.depth
	t.count = adoptedWalk.records
	t.stats.LeafPages = adoptedWalk.leaves
	t.stats.InternalPages = adoptedWalk.internals
	for _, id := range dev.LivePageIDs() {
		if !adoptedWalk.reached[id] {
			if err := pool.FreePage(id); err != nil {
				return nil, fmt.Errorf("btree: recovery GC of orphan page %d: %w", id, err)
			}
		}
	}
	return t, nil
}

// RecoverAt rebuilds a tree handle from the device image under pool, pinned
// to a known root — the form of recovery a write-ahead log checkpoint
// enables. Where Recover must search for the one coherent tree (and fail on
// rival candidates), RecoverAt validates exactly the tree the checkpoint
// record named; stale roots of earlier checkpoints still on the device are
// not ambiguity, just garbage. Live pages outside the validated tree are
// freed unless keep reports them as owned by someone else (the log's own
// pages); pass keep == nil to free every orphan.
//
// When cfg.Versions > 0 the recovered image is seeded into the retention
// window as an already-published version before the epoch advances, so the
// first post-recovery CheckpointBarrier cannot reclaim pages the durable
// checkpoint on the device still references.
func RecoverAt(pool *storage.BufferPool, cfg Config, root storage.PageID, keep func(storage.PageID) bool) (*Tree, error) {
	t := &Tree{pool: pool, cfg: cfg}
	if err := t.applyConfig(); err != nil {
		return nil, err
	}
	info, err := classifyPages(pool)
	if err != nil {
		return nil, err
	}
	w, err := validateTreeOpts(root, info, cfg.Versions == 0)
	if err != nil {
		return nil, fmt.Errorf("btree: recovery at checkpoint root %d: %w", root, err)
	}
	t.root = root
	t.height = w.depth
	t.count = w.records
	t.stats.LeafPages = w.leaves
	t.stats.InternalPages = w.internals
	if t.mvccOn() {
		t.allocEpoch = make(map[storage.PageID]uint64)
		t.versions = append(t.versions, &version{
			epoch:  1,
			root:   root,
			height: w.depth,
			count:  w.records,
		})
		t.epoch = 2
	}
	for _, id := range pool.Device().LivePageIDs() {
		if w.reached[id] || (keep != nil && keep(id)) {
			continue
		}
		if err := pool.FreePage(id); err != nil {
			return nil, fmt.Errorf("btree: recovery GC of orphan page %d: %w", id, err)
		}
	}
	return t, nil
}

// classifyPages reads every live page and classifies it as a leaf, an
// internal node, or garbage (kind 0) — recovery pass 1, shared by Recover
// and RecoverAt. Pages holding foreign data (log pages, zeroed allocations)
// classify as garbage, never as an error.
func classifyPages(pool *storage.BufferPool) (map[storage.PageID]*pageInfo, error) {
	dev := pool.Device()
	page := dev.PageSize()
	physLeaf := (page - headerSize) / leafEntrySize
	physInt := (page - headerSize) / intEntrySize
	info := make(map[storage.PageID]*pageInfo)
	for _, id := range dev.LivePageIDs() {
		f, err := pool.Fetch(id)
		if err != nil {
			return nil, fmt.Errorf("btree: recovery read of page %d: %w", id, err)
		}
		n := node{f.Data()}
		pi := &pageInfo{kind: n.kind(), count: n.count(), link: n.link()}
		switch pi.kind {
		case kindLeaf:
			if pi.count > physLeaf || !leafOrdered(n) {
				pi.kind = 0 // structurally invalid: treat as garbage
			} else if pi.count > 0 {
				pi.firstKey = n.leafKey(0)
				pi.lastKey = n.leafKey(pi.count - 1)
			}
		case kindInternal:
			if pi.count < 1 || pi.count > physInt || !intOrdered(n) {
				pi.kind = 0
			} else {
				pi.children = append(pi.children, pi.link)
				for i := 0; i < pi.count; i++ {
					pi.children = append(pi.children, n.intChild(i))
					pi.seps = append(pi.seps, n.intKey(i))
				}
				pi.firstKey = n.intKey(0)
				pi.lastKey = n.intKey(pi.count - 1)
			}
		default:
			pi.kind = 0 // zeroed allocation or foreign data
		}
		pool.Release(f)
		info[id] = pi
	}
	return info, nil
}

func leafOrdered(n node) bool {
	for i := 1; i < n.count(); i++ {
		if n.leafKey(i-1) >= n.leafKey(i) {
			return false
		}
	}
	return true
}

func intOrdered(n node) bool {
	for i := 1; i < n.count(); i++ {
		if n.intKey(i-1) >= n.intKey(i) {
			return false
		}
	}
	return true
}

// walkResult summarizes one validated candidate tree.
type walkResult struct {
	depth     int
	records   int
	leaves    uint64
	internals uint64
	reached   map[storage.PageID]bool
	chain     []storage.PageID // leaves in left-to-right key order
}

// validateTree walks the subtree rooted at root, checking every structural
// invariant of the on-page format, and errors on the first inconsistency.
func validateTree(root storage.PageID, info map[storage.PageID]*pageInfo) (*walkResult, error) {
	return validateTreeOpts(root, info, true)
}

// validateTreeOpts is validateTree with the leaf-chain check optional: under
// MVCC copy-on-write the chain is stale by design — copying a leaf re-points
// its parent but not its left sibling (that would cascade a copy of the
// whole chain), and every MVCC read path descends through separators
// instead. RecoverAt on a versioned image therefore skips the chain;
// everything else (kinds, counts, key order, separator bounds, uniform
// depth, acyclicity) still holds.
func validateTreeOpts(root storage.PageID, info map[storage.PageID]*pageInfo, checkChain bool) (*walkResult, error) {
	w := &walkResult{reached: make(map[storage.PageID]bool)}
	depth, err := w.walk(root, info, nil, nil)
	if err != nil {
		return nil, err
	}
	w.depth = depth
	if !checkChain {
		return w, nil
	}
	// The leaves, gathered in key order, must form exactly the chain their
	// link pointers describe.
	for i, id := range w.chain {
		want := storage.InvalidPage
		if i+1 < len(w.chain) {
			want = w.chain[i+1]
		}
		if info[id].link != want {
			return nil, fmt.Errorf("btree: leaf %d links to %d, key order says %d", id, info[id].link, want)
		}
	}
	return w, nil
}

// walk validates the subtree at id against exclusive key bounds lo/hi (nil =
// unbounded) and returns its depth.
func (w *walkResult) walk(id storage.PageID, info map[storage.PageID]*pageInfo, lo, hi *core.Key) (int, error) {
	pi, ok := info[id]
	if !ok || pi.kind == 0 {
		return 0, fmt.Errorf("btree: reference to missing or invalid page %d", id)
	}
	if w.reached[id] {
		return 0, fmt.Errorf("btree: page %d reached twice (cycle or shared child)", id)
	}
	w.reached[id] = true
	if pi.count > 0 {
		if lo != nil && pi.firstKey < *lo {
			return 0, fmt.Errorf("btree: page %d key %d below separator bound %d", id, pi.firstKey, *lo)
		}
		if hi != nil && pi.lastKey >= *hi {
			return 0, fmt.Errorf("btree: page %d key %d beyond separator bound %d", id, pi.lastKey, *hi)
		}
	}
	if pi.kind == kindLeaf {
		w.leaves++
		w.records += pi.count
		w.chain = append(w.chain, id)
		return 1, nil
	}
	w.internals++
	// Children: leftmost child is bounded above by the first separator; the
	// child of entry i covers [key_i, key_{i+1}).
	depth := 0
	for i, c := range pi.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = &pi.seps[i-1]
		}
		if i < len(pi.seps) {
			chi = &pi.seps[i]
		}
		d, err := w.walk(c, info, clo, chi)
		if err != nil {
			return 0, err
		}
		if depth == 0 {
			depth = d
		} else if d != depth {
			return 0, fmt.Errorf("btree: page %d has children at depths %d and %d", id, depth, d)
		}
	}
	return depth + 1, nil
}
