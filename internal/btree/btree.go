// Package btree implements a disk-style B+-tree over the simulated pager,
// the canonical read-optimized access method of Table 1 and the top corner
// of the RUM triangle of Figure 1: logarithmic point and range queries at
// the price of index space (internal nodes, page slack) and per-update page
// writes.
//
// The tree is tunable (Section 5's "B+-trees that have dynamically tuned
// parameters"): effective node capacity and bulk-load fill factor can be
// reduced below the physical page capacity, trading space amplification
// against tree height and split frequency.
package btree

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/rum"
	"repro/internal/storage"
)

// Config tunes the tree.
type Config struct {
	// MaxLeaf caps entries per leaf; 0 means the full page capacity.
	MaxLeaf int
	// MaxInternal caps entries per internal node; 0 means page capacity.
	MaxInternal int
	// BulkFill is the leaf fill fraction used by BulkLoad (0 means 1.0:
	// pack pages full; lower values leave split slack, trading space for
	// fewer early splits).
	BulkFill float64
	// Versions enables MVCC snapshot reads when > 0: mutations copy-on-write
	// pages shared with published versions, Publish stamps an immutable
	// epoch-numbered root, and up to Versions published versions are
	// retained for concurrent readers (see mvcc.go). 0 keeps the classic
	// single-owner tree with in-place mutation and eager page reuse.
	Versions int
}

// Stats counts structural events.
type Stats struct {
	LeafSplits     uint64
	InternalSplits uint64
	LeafPages      uint64
	InternalPages  uint64
	// CowCopies counts pages copied by the MVCC copy-on-write discipline —
	// the physical update-overhead tax of snapshot isolation.
	CowCopies uint64
}

// Tree is a B+-tree. Leaves store full records (a clustered primary
// organization): leaf pages are allocated as base data, internal pages as
// auxiliary data. Not safe for concurrent use.
type Tree struct {
	pool   *storage.BufferPool
	cfg    Config
	root   storage.PageID
	height int
	count  int
	stats  Stats

	leafCap int // effective leaf capacity
	intCap  int // effective internal capacity

	// MVCC state (unused when cfg.Versions == 0; see mvcc.go).
	epoch      uint64                    // current write epoch, starts at 1
	allocEpoch map[storage.PageID]uint64 // epoch each live page was allocated in
	versions   []*version                // retained published versions, oldest first
	pinned     []*version                // out-of-window versions still referenced
	retired    []retiredPage             // superseded pages awaiting reclamation
}

// New creates an empty tree on pool. The pool's device meter receives all
// physical traffic.
func New(pool *storage.BufferPool, cfg Config) (*Tree, error) {
	t := &Tree{pool: pool, cfg: cfg}
	if err := t.applyConfig(); err != nil {
		return nil, err
	}
	if t.mvccOn() {
		t.epoch = 1
		t.allocEpoch = make(map[storage.PageID]uint64)
	}
	f, err := t.newPage(rum.Base)
	if err != nil {
		return nil, err
	}
	node{f.Data()}.setKind(kindLeaf)
	node{f.Data()}.setLink(storage.InvalidPage)
	f.MarkDirty()
	t.root = f.ID()
	pool.Release(f)
	t.height = 1
	t.stats.LeafPages = 1
	return t, nil
}

func (t *Tree) applyConfig() error {
	page := t.pool.Device().PageSize()
	physLeaf := (page - headerSize) / leafEntrySize
	physInt := (page - headerSize) / intEntrySize
	t.leafCap = physLeaf
	if t.cfg.MaxLeaf > 0 && t.cfg.MaxLeaf < physLeaf {
		t.leafCap = t.cfg.MaxLeaf
	}
	t.intCap = physInt
	if t.cfg.MaxInternal > 0 && t.cfg.MaxInternal < physInt {
		t.intCap = t.cfg.MaxInternal
	}
	if t.leafCap < 4 || t.intCap < 4 {
		return fmt.Errorf("btree: page size %d too small for capacities (leaf %d, internal %d)", page, t.leafCap, t.intCap)
	}
	if t.cfg.BulkFill < 0 || t.cfg.BulkFill > 1 {
		return fmt.Errorf("btree: bulk fill %v out of range", t.cfg.BulkFill)
	}
	if t.cfg.Versions < 0 {
		return fmt.Errorf("btree: versions %d out of range", t.cfg.Versions)
	}
	return nil
}

// Name identifies the tree and its effective fanout.
func (t *Tree) Name() string { return fmt.Sprintf("btree(B=%d)", t.leafCap) }

// Height returns the number of levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of records.
func (t *Tree) Len() int { return t.count }

// Root returns the current root page id. Under MVCC the root moves on every
// mutating operation (copy-on-write re-points the whole path), so after a
// CheckpointBarrier the root uniquely identifies the barriered state — which
// is exactly what the WAL stores in its checkpoint records for RecoverAt.
func (t *Tree) Root() storage.PageID { return t.root }

// Stats returns structural counters.
func (t *Tree) Stats() Stats { return t.stats }

// Pool returns the buffer pool the tree runs on (experiments inspect the
// device beneath it).
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// Meter returns the device meter accumulating physical traffic.
func (t *Tree) Meter() *rum.Meter { return t.pool.Device().Meter() }

// Size reports the records as base bytes and everything else the tree's
// pages occupy (internal nodes, slack) as auxiliary bytes. Under MVCC,
// retired pages pinned by the retention window count as auxiliary bytes too:
// they are the memory-overhead tax paid for snapshot isolation.
func (t *Tree) Size() rum.SizeInfo {
	pageBytes := (t.stats.LeafPages + t.stats.InternalPages) * uint64(t.pool.Device().PageSize())
	base := uint64(t.count) * core.RecordSize
	if base > pageBytes {
		base = pageBytes
	}
	retained := uint64(len(t.retired)) * uint64(t.pool.Device().PageSize())
	return rum.SizeInfo{BaseBytes: base, AuxBytes: pageBytes - base + retained}
}

// Flush writes all buffered dirty pages to the device.
func (t *Tree) Flush() { t.pool.FlushAll() }

// descendToLeaf walks from the root to the leaf covering k.
func (t *Tree) descendToLeaf(k core.Key) (*storage.Frame, error) {
	pid := t.root
	for {
		f, err := t.pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		n := node{f.Data()}
		if n.isLeaf() {
			return f, nil
		}
		pid = n.route(k)
		t.pool.Release(f)
	}
}

// Get returns the value stored under k.
func (t *Tree) Get(k core.Key) (core.Value, bool) {
	f, err := t.descendToLeaf(k)
	if err != nil {
		return 0, false
	}
	defer t.pool.Release(f)
	n := node{f.Data()}
	i := n.leafSearch(k)
	if i < n.count() && n.leafKey(i) == k {
		return n.leafValue(i), true
	}
	return 0, false
}

// splitResult carries a completed child split up the recursion.
type splitResult struct {
	sep   core.Key
	right storage.PageID
	split bool
}

// Insert adds a record, splitting nodes as needed.
func (t *Tree) Insert(k core.Key, v core.Value) error {
	nroot, res, err := t.insert(t.root, k, v)
	if err != nil {
		return err
	}
	t.root = nroot
	if res.split {
		// Grow a new root.
		f, err := t.newPage(rum.Aux)
		if err != nil {
			return err
		}
		n := node{f.Data()}
		n.setKind(kindInternal)
		n.setLink(t.root)
		n.setIntEntry(0, res.sep, res.right)
		n.setCount(1)
		f.MarkDirty()
		t.root = f.ID()
		t.pool.Release(f)
		t.height++
		t.stats.InternalPages++
	}
	t.count++
	return nil
}

// insert adds (k, v) to the subtree rooted at pid. It returns the subtree's
// possibly-new root page: under MVCC, mutating a page shared with a
// published version copies it (writable), so the caller must re-point its
// child entry when the returned id differs from pid.
func (t *Tree) insert(pid storage.PageID, k core.Key, v core.Value) (storage.PageID, splitResult, error) {
	f, err := t.pool.Fetch(pid)
	if err != nil {
		return pid, splitResult{}, err
	}
	n := node{f.Data()}

	if n.isLeaf() {
		i := n.leafSearch(k)
		if i < n.count() && n.leafKey(i) == k {
			t.pool.Release(f)
			return pid, splitResult{}, core.ErrKeyExists
		}
		if f, err = t.writable(f); err != nil {
			return pid, splitResult{}, err
		}
		n = node{f.Data()}
		npid := f.ID()
		if n.count() < t.leafCap {
			n.leafInsertAt(i, k, v)
			f.MarkDirty()
			t.pool.Release(f)
			return npid, splitResult{}, nil
		}
		res, err := t.splitLeaf(f, i, k, v)
		t.pool.Release(f)
		return npid, res, err
	}

	child := n.route(k)
	t.pool.Release(f)

	nchild, res, err := t.insert(child, k, v)
	if err != nil {
		return pid, splitResult{}, err
	}
	if nchild == child && !res.split {
		return pid, splitResult{}, nil
	}

	// Re-fetch the parent to register the moved child and/or new separator.
	f, err = t.pool.Fetch(pid)
	if err != nil {
		return pid, splitResult{}, err
	}
	if f, err = t.writable(f); err != nil {
		return pid, splitResult{}, err
	}
	npid := f.ID()
	n = node{f.Data()}
	if nchild != child {
		t.replaceChild(n, k, nchild)
		f.MarkDirty()
	}
	if !res.split {
		t.pool.Release(f)
		return npid, splitResult{}, nil
	}
	i := n.intSearch(res.sep)
	if n.count() < t.intCap {
		n.intInsertAt(i, res.sep, res.right)
		f.MarkDirty()
		t.pool.Release(f)
		return npid, splitResult{}, nil
	}
	up, err := t.splitInternal(f, i, res.sep, res.right)
	t.pool.Release(f)
	return npid, up, err
}

// replaceChild rewrites the child pointer that routes k to point at nchild.
func (t *Tree) replaceChild(n node, k core.Key, nchild storage.PageID) {
	i := n.intSearch(k)
	if i == 0 {
		n.setLink(nchild)
		return
	}
	n.setIntEntry(i-1, n.intKey(i-1), nchild)
}

// splitLeaf splits the full leaf in f, inserting (k, v) at logical position i
// of the pre-split entry sequence, and returns the separator for the parent.
func (t *Tree) splitLeaf(f *storage.Frame, i int, k core.Key, v core.Value) (splitResult, error) {
	left := node{f.Data()}
	c := left.count()
	mid := (c + 1) / 2

	rf, err := t.newPage(rum.Base)
	if err != nil {
		return splitResult{}, err
	}
	right := node{rf.Data()}
	right.setKind(kindLeaf)
	right.setLink(left.link())
	left.setLink(rf.ID())

	// Move the upper half to the right leaf.
	moved := c - mid
	copy(right.data[leafOff(0):leafOff(moved)], left.data[leafOff(mid):leafOff(c)])
	right.setCount(moved)
	left.setCount(mid)

	if i <= mid && (i < mid || k < right.leafKey(0)) {
		left.leafInsertAt(i, k, v)
	} else {
		right.leafInsertAt(right.leafSearch(k), k, v)
	}

	f.MarkDirty()
	rf.MarkDirty()
	sep := right.leafKey(0)
	t.pool.Release(rf)
	t.stats.LeafSplits++
	t.stats.LeafPages++
	return splitResult{sep: sep, right: rf.ID(), split: true}, nil
}

// splitInternal splits the full internal node in f while inserting
// (sep, child) at entry position i, promoting the middle separator.
func (t *Tree) splitInternal(f *storage.Frame, i int, sep core.Key, child storage.PageID) (splitResult, error) {
	left := node{f.Data()}
	c := left.count()

	// Materialize the post-insert entry sequence.
	type entry struct {
		k core.Key
		c storage.PageID
	}
	entries := make([]entry, 0, c+1)
	for j := 0; j < c; j++ {
		if j == i {
			entries = append(entries, entry{sep, child})
		}
		entries = append(entries, entry{left.intKey(j), left.intChild(j)})
	}
	if i == c {
		entries = append(entries, entry{sep, child})
	}

	mid := len(entries) / 2
	promoted := entries[mid]

	rf, err := t.newPage(rum.Aux)
	if err != nil {
		return splitResult{}, err
	}
	right := node{rf.Data()}
	right.setKind(kindInternal)
	right.setLink(promoted.c)
	for j, e := range entries[mid+1:] {
		right.setIntEntry(j, e.k, e.c)
	}
	right.setCount(len(entries) - mid - 1)

	for j, e := range entries[:mid] {
		left.setIntEntry(j, e.k, e.c)
	}
	left.setCount(mid)

	f.MarkDirty()
	rf.MarkDirty()
	t.pool.Release(rf)
	t.stats.InternalSplits++
	t.stats.InternalPages++
	return splitResult{sep: promoted.k, right: rf.ID(), split: true}, nil
}

// Update overwrites the value stored under k, reporting whether it existed.
// Under MVCC the descent copies-on-write every node on the path (the
// path-copying cost of mutating next to published versions).
func (t *Tree) Update(k core.Key, v core.Value) bool {
	f, err := t.descendToLeafW(k)
	if err != nil {
		return false
	}
	defer t.pool.Release(f)
	n := node{f.Data()}
	i := n.leafSearch(k)
	if i >= n.count() || n.leafKey(i) != k {
		return false
	}
	n.setLeafEntry(i, k, v)
	f.MarkDirty()
	return true
}

// Delete removes k. Deletion is lazy (no rebalancing): the entry is removed
// from its leaf and underfull pages are tolerated, the common practice in
// production B-trees. Under MVCC the descent copies-on-write the path.
func (t *Tree) Delete(k core.Key) bool {
	f, err := t.descendToLeafW(k)
	if err != nil {
		return false
	}
	defer t.pool.Release(f)
	n := node{f.Data()}
	i := n.leafSearch(k)
	if i >= n.count() || n.leafKey(i) != k {
		return false
	}
	n.leafRemoveAt(i)
	f.MarkDirty()
	t.count--
	return true
}

// RangeScan emits records with lo <= key <= hi in key order, walking the
// leaf chain: the Table-1 O(log_B N + m/B) range cost. Under MVCC the leaf
// chain is not maintained (copying a leaf would cascade through every left
// sibling's next-pointer), so the scan descends through internal nodes
// instead — the slightly higher O((m/B)·log_B N) read tax of path copying.
func (t *Tree) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	if t.mvccOn() {
		n, _ := t.scanSubtree(t.root, lo, hi, emit)
		return n
	}
	f, err := t.descendToLeaf(lo)
	if err != nil {
		return 0
	}
	emitted := 0
	for {
		n := node{f.Data()}
		i := n.leafSearch(lo)
		for ; i < n.count(); i++ {
			k := n.leafKey(i)
			if k > hi {
				t.pool.Release(f)
				return emitted
			}
			emitted++
			if !emit(k, n.leafValue(i)) {
				t.pool.Release(f)
				return emitted
			}
		}
		next := n.link()
		t.pool.Release(f)
		if next == storage.InvalidPage {
			return emitted
		}
		f, err = t.pool.Fetch(next)
		if err != nil {
			return emitted
		}
	}
}

// BulkLoad replaces the tree's contents with the key-sorted records,
// building leaves left to right at the configured fill factor and stacking
// internal levels above them.
func (t *Tree) BulkLoad(recs []core.Record) error {
	if err := t.freeAll(t.root); err != nil {
		return err
	}
	t.stats.LeafPages = 0
	t.stats.InternalPages = 0
	t.count = 0

	fill := t.cfg.BulkFill
	if fill == 0 {
		fill = 1.0
	}
	perLeaf := int(fill * float64(t.leafCap))
	if perLeaf < 1 {
		perLeaf = 1
	}
	perInt := int(fill * float64(t.intCap))
	if perInt < 2 {
		perInt = 2
	}

	type levelEntry struct {
		first core.Key
		pid   storage.PageID
	}

	// Build the leaf level.
	var level []levelEntry
	var prevLeaf *storage.Frame
	for start := 0; start == 0 || start < len(recs); start += perLeaf {
		end := start + perLeaf
		if end > len(recs) {
			end = len(recs)
		}
		f, err := t.newPage(rum.Base)
		if err != nil {
			return err
		}
		n := node{f.Data()}
		n.setKind(kindLeaf)
		n.setLink(storage.InvalidPage)
		for j, r := range recs[start:end] {
			n.setLeafEntry(j, r.Key, r.Value)
		}
		n.setCount(end - start)
		f.MarkDirty()
		if prevLeaf != nil {
			node{prevLeaf.Data()}.setLink(f.ID())
			prevLeaf.MarkDirty()
			t.pool.Release(prevLeaf)
		}
		prevLeaf = f
		first := core.Key(0)
		if end > start {
			first = recs[start].Key
		}
		level = append(level, levelEntry{first: first, pid: f.ID()})
		t.stats.LeafPages++
		if len(recs) == 0 {
			break
		}
	}
	if prevLeaf != nil {
		t.pool.Release(prevLeaf)
	}
	t.height = 1

	// Stack internal levels until one node remains.
	for len(level) > 1 {
		var next []levelEntry
		for start := 0; start < len(level); start += perInt + 1 {
			end := start + perInt + 1
			if end > len(level) {
				end = len(level)
			}
			// A group of one would form a childless separator; merge it into
			// the previous node when that node has physical room.
			if end-start == 1 && len(next) > 0 {
				f, err := t.pool.Fetch(next[len(next)-1].pid)
				if err != nil {
					return err
				}
				n := node{f.Data()}
				physInt := (t.pool.Device().PageSize() - headerSize) / intEntrySize
				if n.count() < physInt {
					n.intInsertAt(n.count(), level[start].first, level[start].pid)
					f.MarkDirty()
					t.pool.Release(f)
					continue
				}
				t.pool.Release(f)
				// Fall through: build a node with only a leftmost child,
				// which routes every key of the group correctly.
			}
			f, err := t.newPage(rum.Aux)
			if err != nil {
				return err
			}
			n := node{f.Data()}
			n.setKind(kindInternal)
			n.setLink(level[start].pid)
			for j, e := range level[start+1 : end] {
				n.setIntEntry(j, e.first, e.pid)
			}
			n.setCount(end - start - 1)
			f.MarkDirty()
			t.pool.Release(f)
			next = append(next, levelEntry{first: level[start].first, pid: f.ID()})
			t.stats.InternalPages++
		}
		level = next
		t.height++
	}
	t.root = level[0].pid
	t.count = len(recs)
	return nil
}

// BulkLoadUnsorted external-sorts recs (charging the simulated sort I/O of
// Table 1's bulk-creation row) and then bulk-loads them.
func (t *Tree) BulkLoadUnsorted(recs []core.Record) (extsort.Stats, error) {
	st := extsort.Sort(recs, t.pool.Capacity(), t.pool.Device().PageSize(), t.Meter())
	return st, t.BulkLoad(recs)
}

// Drop releases every page of the tree back to its pool, leaving the tree
// unusable. Composite structures (e.g. the partitioned B-tree) call it when
// retiring a partition.
func (t *Tree) Drop() error {
	if err := t.freeAll(t.root); err != nil {
		return err
	}
	t.root = storage.InvalidPage
	t.count = 0
	t.stats.LeafPages = 0
	t.stats.InternalPages = 0
	return nil
}

// freeAll releases every page of the subtree rooted at pid.
func (t *Tree) freeAll(pid storage.PageID) error {
	f, err := t.pool.Fetch(pid)
	if err != nil {
		return err
	}
	n := node{f.Data()}
	if !n.isLeaf() {
		children := make([]storage.PageID, 0, n.count()+1)
		children = append(children, n.link())
		for i := 0; i < n.count(); i++ {
			children = append(children, n.intChild(i))
		}
		t.pool.Release(f)
		for _, c := range children {
			if err := t.freeAll(c); err != nil {
				return err
			}
		}
		return t.freePage(pid)
	}
	t.pool.Release(f)
	return t.freePage(pid)
}

// Knobs exposes the tunable parameters (core.Tunable).
func (t *Tree) Knobs() []core.Knob {
	page := t.pool.Device().PageSize()
	physLeaf := float64((page - headerSize) / leafEntrySize)
	knobs := []core.Knob{
		{
			Name: "max_leaf", Min: 4, Max: physLeaf, Current: float64(t.leafCap),
			Doc: "entries per leaf; smaller = taller tree (higher RO), less shifting per split (lower UO variance), more page slack (higher MO)",
		},
		{
			Name: "bulk_fill", Min: 0.3, Max: 1, Current: t.bulkFill(),
			Doc: "bulk-load fill factor; lower = more slack (higher MO) but fewer early splits (lower UO)",
		},
	}
	if t.mvccOn() {
		knobs = append(knobs, core.Knob{
			Name: "versions", Min: 1, Max: 64, Current: float64(t.cfg.Versions),
			Doc: "published MVCC versions retained; more = longer snapshot lifetimes for concurrent readers at higher MO (retired pages pinned)",
		})
	}
	return knobs
}

func (t *Tree) bulkFill() float64 {
	if t.cfg.BulkFill == 0 {
		return 1.0
	}
	return t.cfg.BulkFill
}

// SetKnob adjusts a tuning parameter for subsequent operations
// (core.Tunable). Existing pages are not reorganized.
func (t *Tree) SetKnob(name string, value float64) error {
	switch name {
	case "max_leaf":
		t.cfg.MaxLeaf = int(value)
	case "bulk_fill":
		t.cfg.BulkFill = value
	case "versions":
		if !t.mvccOn() {
			return fmt.Errorf("btree: versions knob requires a tree built with Config.Versions > 0")
		}
		if int(value) < 1 {
			return fmt.Errorf("btree: versions %v out of range", value)
		}
		t.cfg.Versions = int(value)
		t.trimAndReclaim()
	default:
		return fmt.Errorf("btree: unknown knob %q", name)
	}
	return t.applyConfig()
}
