package btree

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/storage"
)

// On-page node layout. Every node occupies exactly one device page:
//
//	byte 0      kind: 1 = leaf, 2 = internal
//	byte 1      unused
//	bytes 2:4   entry count (uint16)
//	bytes 4:8   leaf: next-leaf PageID; internal: leftmost child PageID
//	bytes 8:12  reserved
//	bytes 12:   entries
//
// Leaf entries are 16 bytes: key (8) + value (8), sorted by key.
// Internal entries are 12 bytes: separator key (8) + child PageID (4),
// sorted by key; the subtree at entry i holds keys in [key_i, key_{i+1}).
// Keys below key_0 route to the leftmost child.
const (
	headerSize    = 12
	leafEntrySize = core.RecordSize
	intEntrySize  = 12

	kindLeaf     = 1
	kindInternal = 2
)

type node struct{ data []byte }

func (n node) kind() byte     { return n.data[0] }
func (n node) setKind(k byte) { n.data[0] = k }
func (n node) count() int     { return int(binary.LittleEndian.Uint16(n.data[2:4])) }
func (n node) setCount(c int) { binary.LittleEndian.PutUint16(n.data[2:4], uint16(c)) }
func (n node) isLeaf() bool   { return n.kind() == kindLeaf }
func (n node) link() storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(n.data[4:8]))
}
func (n node) setLink(id storage.PageID) {
	binary.LittleEndian.PutUint32(n.data[4:8], uint32(id))
}

// --- leaf accessors ---

func leafOff(i int) int { return headerSize + i*leafEntrySize }

func (n node) leafKey(i int) core.Key {
	return binary.LittleEndian.Uint64(n.data[leafOff(i):])
}

func (n node) leafValue(i int) core.Value {
	return binary.LittleEndian.Uint64(n.data[leafOff(i)+8:])
}

func (n node) setLeafEntry(i int, k core.Key, v core.Value) {
	off := leafOff(i)
	binary.LittleEndian.PutUint64(n.data[off:], k)
	binary.LittleEndian.PutUint64(n.data[off+8:], v)
}

// leafSearch returns the position of the first entry with key >= k.
func (n node) leafSearch(k core.Key) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.leafKey(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafInsertAt shifts entries right and writes (k, v) at position i.
func (n node) leafInsertAt(i int, k core.Key, v core.Value) {
	c := n.count()
	copy(n.data[leafOff(i+1):leafOff(c+1)], n.data[leafOff(i):leafOff(c)])
	n.setLeafEntry(i, k, v)
	n.setCount(c + 1)
}

// leafRemoveAt shifts entries left over position i.
func (n node) leafRemoveAt(i int) {
	c := n.count()
	copy(n.data[leafOff(i):leafOff(c-1)], n.data[leafOff(i+1):leafOff(c)])
	n.setCount(c - 1)
}

// --- internal accessors ---

func intOff(i int) int { return headerSize + i*intEntrySize }

func (n node) intKey(i int) core.Key {
	return binary.LittleEndian.Uint64(n.data[intOff(i):])
}

func (n node) intChild(i int) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(n.data[intOff(i)+8:]))
}

func (n node) setIntEntry(i int, k core.Key, child storage.PageID) {
	off := intOff(i)
	binary.LittleEndian.PutUint64(n.data[off:], k)
	binary.LittleEndian.PutUint32(n.data[off+8:], uint32(child))
}

// route returns the child that covers k: the entry with the largest separator
// <= k, or the leftmost child when k precedes every separator.
func (n node) route(k core.Key) storage.PageID {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.intKey(mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return n.link() // leftmost child
	}
	return n.intChild(lo - 1)
}

// intSearch returns the position of the first entry with key > k, i.e. the
// insertion position for a new separator k.
func (n node) intSearch(k core.Key) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.intKey(mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intInsertAt shifts entries right and writes (k, child) at position i.
func (n node) intInsertAt(i int, k core.Key, child storage.PageID) {
	c := n.count()
	copy(n.data[intOff(i+1):intOff(c+1)], n.data[intOff(i):intOff(c)])
	n.setIntEntry(i, k, child)
	n.setCount(c + 1)
}
