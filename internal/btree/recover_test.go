package btree

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

// crashStack builds a tree over an explicit device so tests can crash the
// pool and reopen the image.
func crashStack(t *testing.T, pageSize, poolPages int) (*storage.Device, *storage.BufferPool, *Tree) {
	t.Helper()
	dev := storage.NewDevice(pageSize, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, poolPages)
	tr, err := New(pool, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return dev, pool, tr
}

// TestRecoverFlushedTree: everything flushed before the crash is served back
// after Recover, with the handle's Len/Height/stats rebuilt from the image.
func TestRecoverFlushedTree(t *testing.T) {
	dev, pool, tr := crashStack(t, 256, 8)
	const n = 500
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(k, k*7); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	pool.Crash()

	pool2 := storage.NewBufferPool(dev, 8)
	tr2, err := Recover(pool2, Config{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if tr2.Len() != n {
		t.Fatalf("recovered Len=%d want %d", tr2.Len(), n)
	}
	if tr2.Height() != tr.Height() {
		t.Fatalf("recovered Height=%d want %d", tr2.Height(), tr.Height())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tr2.Get(k)
		if !ok || v != k*7 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	// The recovered handle must be writable: the freelist and structure are
	// coherent enough to keep growing.
	if err := tr2.Insert(n+1, 1); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	// Key order and leaf chain agree end to end.
	var last core.Key
	first := true
	tr2.RangeScan(0, ^core.Key(0), func(k core.Key, _ core.Value) bool {
		if !first && k <= last {
			t.Fatalf("scan out of order: %d after %d", k, last)
		}
		first, last = false, k
		return true
	})
}

// TestRecoverFreesOrphans: live pages outside the adopted tree (a leaf
// allocated for a split that never committed) are garbage-collected.
func TestRecoverFreesOrphans(t *testing.T) {
	dev, pool, tr := crashStack(t, 256, 8)
	for k := uint64(0); k < 100; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	// A zeroed allocation: the moment-of-crash artifact of an interrupted
	// split that had claimed a page but never wrote it.
	orphan := dev.Alloc(rum.Base)
	if err := dev.Write(orphan, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	pool.Crash()

	live := len(dev.LivePageIDs())
	pool2 := storage.NewBufferPool(dev, 8)
	tr2, err := Recover(pool2, Config{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := len(dev.LivePageIDs()); got != live-1 {
		t.Fatalf("orphan not freed: %d live pages, want %d", got, live-1)
	}
	if tr2.Len() != 100 {
		t.Fatalf("Len=%d", tr2.Len())
	}
}

// TestRecoverAmbiguousImageFailsLoudly: two coherent trees on one device is
// unresolvable without a superblock — Recover must refuse, not guess.
func TestRecoverAmbiguousImageFailsLoudly(t *testing.T) {
	dev := storage.NewDevice(256, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 8)
	for trees := 0; trees < 2; trees++ {
		tr, err := New(pool, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 50; k++ {
			if err := tr.Insert(k+uint64(trees)*1000, k); err != nil {
				t.Fatal(err)
			}
		}
		tr.Flush()
	}
	pool.Crash()
	if _, err := Recover(storage.NewBufferPool(dev, 8), Config{}); err == nil {
		t.Fatal("Recover adopted one of two rival trees")
	} else if !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRecoverCorruptImageFailsLoudly: a root whose child pointer dangles must
// be rejected rather than served.
func TestRecoverCorruptImageFailsLoudly(t *testing.T) {
	dev, pool, tr := crashStack(t, 256, 8)
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	if tr.Height() < 2 {
		t.Fatal("test needs an internal node")
	}
	// Tear a leaf out from under the internal structure.
	var leaf storage.PageID = storage.InvalidPage
	for _, id := range dev.LivePageIDs() {
		data, err := dev.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] == kindLeaf && id != tr.root {
			leaf = id
			break
		}
	}
	if leaf == storage.InvalidPage {
		t.Fatal("no leaf found")
	}
	if err := dev.Free(leaf); err != nil {
		t.Fatal(err)
	}
	pool.Crash()
	if _, err := Recover(storage.NewBufferPool(dev, 8), Config{}); err == nil {
		t.Fatal("Recover served a tree with a dangling child")
	}
}

// TestRecoverEmptyDevice: zero live pages is not a tree — fail loudly.
func TestRecoverEmptyDevice(t *testing.T) {
	dev := storage.NewDevice(256, storage.SSD, nil)
	if _, err := Recover(storage.NewBufferPool(dev, 8), Config{}); err == nil {
		t.Fatal("Recover invented a tree from an empty device")
	}
}
