package btree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/rum"
	"repro/internal/storage"
)

func newTestTree(t *testing.T, pageSize, poolPages int, cfg Config) *Tree {
	t.Helper()
	dev := storage.NewDevice(pageSize, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, poolPages)
	tr, err := New(pool, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, 512, 8, Config{})
	if _, ok := tr.Get(42); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete(42) {
		t.Fatal("Delete on empty tree returned true")
	}
	if tr.Update(42, 1) {
		t.Fatal("Update on empty tree returned true")
	}
	if n := tr.RangeScan(0, ^uint64(0), func(core.Key, core.Value) bool { return true }); n != 0 {
		t.Fatalf("RangeScan on empty tree emitted %d", n)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("Len=%d Height=%d, want 0,1", tr.Len(), tr.Height())
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := newTestTree(t, 512, 8, Config{})
	for k := uint64(0); k < 100; k++ {
		if err := tr.Insert(k, k*10); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		v, ok := tr.Get(k)
		if !ok || v != k*10 {
			t.Fatalf("Get(%d) = %d,%v; want %d,true", k, v, ok, k*10)
		}
	}
	if _, ok := tr.Get(100); ok {
		t.Fatal("Get(100) found a missing key")
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := newTestTree(t, 512, 8, Config{})
	if err := tr.Insert(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(7, 2); err != core.ErrKeyExists {
		t.Fatalf("duplicate insert: got %v, want ErrKeyExists", err)
	}
	if v, _ := tr.Get(7); v != 1 {
		t.Fatalf("value changed by rejected insert: %d", v)
	}
}

// TestRandomizedAgainstMap drives the tree with a random op stream and
// cross-checks every result against a reference map.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := newTestTree(t, 256, 16, Config{}) // tiny pages force deep trees
	ref := make(map[uint64]uint64)

	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(5000))
		switch rng.Intn(4) {
		case 0: // insert
			err := tr.Insert(k, k+1)
			if _, exists := ref[k]; exists {
				if err != core.ErrKeyExists {
					t.Fatalf("op %d: Insert(%d) existing: err=%v", i, k, err)
				}
			} else {
				if err != nil {
					t.Fatalf("op %d: Insert(%d): %v", i, k, err)
				}
				ref[k] = k + 1
			}
		case 1: // get
			v, ok := tr.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v; want %d,%v", i, k, v, ok, rv, rok)
			}
		case 2: // update
			nv := uint64(rng.Int63())
			ok := tr.Update(k, nv)
			_, rok := ref[k]
			if ok != rok {
				t.Fatalf("op %d: Update(%d) = %v; want %v", i, k, ok, rok)
			}
			if ok {
				ref[k] = nv
			}
		case 3: // delete
			ok := tr.Delete(k)
			_, rok := ref[k]
			if ok != rok {
				t.Fatalf("op %d: Delete(%d) = %v; want %v", i, k, ok, rok)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len=%d, ref=%d", i, tr.Len(), len(ref))
		}
	}

	// Final full scan must equal the sorted reference contents.
	checkScanMatches(t, tr, ref)
}

func checkScanMatches(t *testing.T, tr *Tree, ref map[uint64]uint64) {
	t.Helper()
	want := make([]uint64, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	tr.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		got = append(got, k)
		if v != ref[k] {
			t.Fatalf("scan: value of %d = %d, want %d", k, v, ref[k])
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan emitted %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan order: got[%d]=%d, want %d", i, got[i], want[i])
		}
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := newTestTree(t, 512, 16, Config{})
	for k := uint64(0); k < 1000; k += 2 { // even keys only
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	n := tr.RangeScan(100, 200, func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	if n != len(got) {
		t.Fatalf("count %d != emitted %d", n, len(got))
	}
	if len(got) != 51 || got[0] != 100 || got[50] != 200 {
		t.Fatalf("range [100,200]: got %d keys, first=%d last=%d", len(got), got[0], got[len(got)-1])
	}
	// Early termination.
	n = tr.RangeScan(0, ^uint64(0), func(core.Key, core.Value) bool { return false })
	if n != 1 {
		t.Fatalf("early-terminated scan emitted %d", n)
	}
	// Range with odd (absent) boundaries.
	n = tr.RangeScan(101, 199, nil2(t, 49))
	if n != 49 {
		t.Fatalf("range (101,199): %d", n)
	}
}

func nil2(t *testing.T, max int) func(core.Key, core.Value) bool {
	n := 0
	return func(core.Key, core.Value) bool {
		n++
		if n > max {
			t.Fatalf("emitted more than %d", max)
		}
		return true
	}
}

func TestBulkLoadAndScan(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 5000} {
		tr := newTestTree(t, 512, 64, Config{})
		recs := make([]core.Record, n)
		for i := range recs {
			recs[i] = core.Record{Key: uint64(i * 3), Value: uint64(i)}
		}
		if err := tr.BulkLoad(recs); err != nil {
			t.Fatalf("BulkLoad(%d): %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("Len=%d want %d", tr.Len(), n)
		}
		for i := range recs {
			v, ok := tr.Get(recs[i].Key)
			if !ok || v != recs[i].Value {
				t.Fatalf("n=%d: Get(%d)=%d,%v", n, recs[i].Key, v, ok)
			}
		}
		got := 0
		tr.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
			if k != recs[got].Key {
				t.Fatalf("scan[%d]=%d want %d", got, k, recs[got].Key)
			}
			got++
			return true
		})
		if got != n {
			t.Fatalf("scan emitted %d want %d", got, n)
		}
	}
}

func TestBulkLoadThenInsert(t *testing.T) {
	tr := newTestTree(t, 512, 64, Config{BulkFill: 0.7})
	recs := make([]core.Record, 2000)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i * 2), Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	// Insert the odd keys afterwards.
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(uint64(i*2+1), uint64(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i*2+1, err)
		}
	}
	if tr.Len() != 4000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for k := uint64(0); k < 4000; k++ {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("Get(%d) missing", k)
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := newTestTree(t, 256, 64, Config{})
	for k := uint64(0); k < 10000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 || tr.Height() > 10 {
		t.Fatalf("implausible height %d for 10k keys on 256B pages", tr.Height())
	}
}

func TestSizeAccountsSlack(t *testing.T) {
	full := newTestTree(t, 512, 64, Config{BulkFill: 1.0})
	loose := newTestTree(t, 512, 64, Config{BulkFill: 0.5})
	recs := make([]core.Record, 4096)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
	}
	if err := full.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := loose.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if fa, la := full.Size().SpaceAmplification(), loose.Size().SpaceAmplification(); la <= fa {
		t.Fatalf("fill 0.5 should cost more space: full=%v loose=%v", fa, la)
	}
}

func TestMeterCountsDeviceTraffic(t *testing.T) {
	meter := &rum.Meter{}
	dev := storage.NewDevice(512, storage.SSD, meter)
	pool := storage.NewBufferPool(dev, 4) // tiny pool: forces device traffic
	tr, err := New(pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	if meter.PhysicalWritten() == 0 {
		t.Fatal("no physical writes metered")
	}
	before := meter.Snapshot()
	for k := uint64(0); k < 100; k++ {
		tr.Get(k * 13)
	}
	d := meter.Diff(before)
	if d.PhysicalRead() == 0 {
		t.Fatal("no physical reads metered for cold gets")
	}
	if d.BaseRead == 0 || d.AuxRead == 0 {
		t.Fatalf("expected both base (leaf) and aux (internal) reads, got base=%d aux=%d", d.BaseRead, d.AuxRead)
	}
}

func TestTunableKnobs(t *testing.T) {
	tr := newTestTree(t, 512, 16, Config{})
	knobs := tr.Knobs()
	if len(knobs) == 0 {
		t.Fatal("no knobs")
	}
	if err := tr.SetKnob("max_leaf", 8); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Fanout 8 over 500 keys needs at least ceil(log_8(500/8)) + 1 levels.
	if tr.Height() < 3 {
		t.Fatalf("height %d too small for fanout 8", tr.Height())
	}
	if err := tr.SetKnob("nope", 1); err == nil {
		t.Fatal("unknown knob accepted")
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	tr := newTestTree(t, 512, 16, Config{})
	for k := uint64(0); k < 1000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 1000; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) = false", k)
		}
	}
	for k := uint64(0); k < 1000; k += 2 {
		if err := tr.Insert(k, k*7); err != nil {
			t.Fatalf("reinsert %d: %v", k, err)
		}
	}
	for k := uint64(0); k < 1000; k++ {
		v, ok := tr.Get(k)
		if !ok {
			t.Fatalf("Get(%d) missing", k)
		}
		want := k
		if k%2 == 0 {
			want = k * 7
		}
		if v != want {
			t.Fatalf("Get(%d)=%d want %d", k, v, want)
		}
	}
}

func TestBulkLoadUnsorted(t *testing.T) {
	tr := newTestTree(t, 512, 8, Config{})
	rng := rand.New(rand.NewSource(3))
	recs := make([]core.Record, 3000)
	seen := make(map[uint64]bool)
	for i := range recs {
		k := uint64(rng.Int63n(1 << 40))
		for seen[k] {
			k = uint64(rng.Int63n(1 << 40))
		}
		seen[k] = true
		recs[i] = core.Record{Key: k, Value: k}
	}
	st, err := tr.BulkLoadUnsorted(recs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes < 1 || st.PageReads == 0 {
		t.Fatalf("external sort stats implausible: %+v", st)
	}
	prev := uint64(0)
	first := true
	tr.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		if !first && k <= prev {
			t.Fatalf("scan not sorted: %d after %d", k, prev)
		}
		first, prev = false, k
		return true
	})
	if tr.Len() != 3000 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

// TestFaultToleranceOnReads: an injected device read failure mid-descent
// must surface as a miss, not a panic, and the tree must serve correctly
// once the fault clears.
func TestFaultToleranceOnReads(t *testing.T) {
	dev := storage.NewDevice(512, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 2) // tiny: every op hits the device
	tr, err := New(pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	dev.SetInjector(faults.New(faults.Plan{Seed: 7, PRead: 0.5}))
	misses := 0
	for k := uint64(0); k < 10; k++ {
		if _, ok := tr.Get(k * 100); !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("injected fault never surfaced")
	}
	dev.SetInjector(nil)
	for k := uint64(0); k < 2000; k += 111 {
		if v, ok := tr.Get(k); !ok || v != k {
			t.Fatalf("post-fault Get(%d) = %d,%v", k, v, ok)
		}
	}
}
