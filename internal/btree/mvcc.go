// MVCC snapshot reads for the B+-tree: path-copying on mutation,
// epoch-stamped immutable roots, bounded version retention with a
// reclamation epoch.
//
// The design is shadow paging amortized over a publish interval. Every page
// records the write epoch it was allocated in. Mutating a page allocated in
// the current epoch is done in place — nobody else can see it yet. Mutating
// a page from an earlier epoch first copies it to a fresh page (writable),
// re-points the parent, and retires the original: published versions keep
// reading the untouched original bytes. Publish flushes the buffer pool so
// every reachable page is materialized on the device, stamps the current
// root with the epoch, captures a storage.PageView for lock-free readers,
// and advances the epoch — making all surviving pages copy-on-write.
//
// Reclamation is epoch-based. A retired page carries the epoch it was
// superseded in; it can be recycled once the minimum epoch over all live
// versions (retained in the bounded window, or released late by a reader)
// has reached that epoch, because a version published at epoch e only
// references pages retired strictly after e. Until then the retired pages
// are the memory-overhead (MO) tax of snapshot isolation, reported through
// Size() and SnapshotStats().
package btree

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

// version is one published immutable root. refs counts outstanding acquired
// snapshots; it is atomic because Release may run on a reader goroutine
// while the writer's reclamation pass inspects it.
type version struct {
	epoch  uint64
	root   storage.PageID
	height int
	count  int
	view   *storage.PageView
	refs   atomic.Int64
}

// retiredPage is a page superseded by copy-on-write (or dropped from the
// tree) during the given epoch, awaiting reclamation.
type retiredPage struct {
	pid   storage.PageID
	epoch uint64
}

func (t *Tree) mvccOn() bool { return t.cfg.Versions > 0 }

// newPage allocates a page through the pool, registering its birth epoch
// under MVCC so writable can tell private pages from published ones.
func (t *Tree) newPage(c rum.Class) (*storage.Frame, error) {
	f, err := t.pool.NewPage(c)
	if err != nil {
		return nil, err
	}
	if t.mvccOn() {
		t.allocEpoch[f.ID()] = t.epoch
	}
	return f, nil
}

// freePage releases a page that is leaving the tree. Under MVCC a page born
// in the current epoch was never published and is freed eagerly; anything
// older may be reachable from a published version and is retired instead.
func (t *Tree) freePage(pid storage.PageID) error {
	if !t.mvccOn() {
		return t.pool.FreePage(pid)
	}
	if t.allocEpoch[pid] == t.epoch {
		delete(t.allocEpoch, pid)
		return t.pool.FreePage(pid)
	}
	t.retired = append(t.retired, retiredPage{pid: pid, epoch: t.epoch})
	return nil
}

// writable returns a frame whose page may be mutated in place. Outside MVCC
// (and for pages born in the current epoch) that is the frame itself. For a
// page shared with published versions it allocates a copy, retires the
// original, and returns the copy — the caller must re-point the parent at
// the new id. On error the input frame has been released.
func (t *Tree) writable(f *storage.Frame) (*storage.Frame, error) {
	if !t.mvccOn() {
		return f, nil
	}
	pid := f.ID()
	if t.allocEpoch[pid] == t.epoch {
		return f, nil
	}
	class := rum.Base
	if !(node{f.Data()}).isLeaf() {
		class = rum.Aux
	}
	nf, err := t.newPage(class)
	if err != nil {
		t.pool.Release(f)
		return nil, err
	}
	copy(nf.Data(), f.Data())
	nf.MarkDirty()
	t.pool.Release(f)
	t.retired = append(t.retired, retiredPage{pid: pid, epoch: t.epoch})
	t.stats.CowCopies++
	return nf, nil
}

// descendToLeafW walks from the root to the leaf covering k, making every
// node on the path writable and re-pointing parents as copies happen. It is
// the mutation-path descent for Update and Delete; outside MVCC it behaves
// exactly like descendToLeaf.
func (t *Tree) descendToLeafW(k core.Key) (*storage.Frame, error) {
	f, err := t.pool.Fetch(t.root)
	if err != nil {
		return nil, err
	}
	if f, err = t.writable(f); err != nil {
		return nil, err
	}
	t.root = f.ID()
	for {
		n := node{f.Data()}
		if n.isLeaf() {
			return f, nil
		}
		child := n.route(k)
		cf, err := t.pool.Fetch(child)
		if err != nil {
			t.pool.Release(f)
			return nil, err
		}
		if cf, err = t.writable(cf); err != nil {
			t.pool.Release(f)
			return nil, err
		}
		if cf.ID() != child {
			t.replaceChild(n, k, cf.ID())
			f.MarkDirty()
		}
		t.pool.Release(f)
		f = cf
	}
}

// scanSubtree emits records in [lo, hi] under pid in key order without using
// the leaf chain, descending through internal separators instead. It reports
// whether the scan should continue past this subtree.
func (t *Tree) scanSubtree(pid storage.PageID, lo, hi core.Key, emit func(core.Key, core.Value) bool) (int, bool) {
	f, err := t.pool.Fetch(pid)
	if err != nil {
		return 0, false
	}
	n := node{f.Data()}
	if n.isLeaf() {
		emitted := 0
		for i := n.leafSearch(lo); i < n.count(); i++ {
			k := n.leafKey(i)
			if k > hi {
				t.pool.Release(f)
				return emitted, false
			}
			emitted++
			if !emit(k, n.leafValue(i)) {
				t.pool.Release(f)
				return emitted, false
			}
		}
		t.pool.Release(f)
		return emitted, true
	}
	// Collect overlapping children, then release the parent before
	// recursing to respect the pool's pin budget (same as freeAll).
	cnt := n.count()
	children := make([]storage.PageID, 0, cnt+1)
	for ci := 0; ci <= cnt; ci++ {
		if ci > 0 && n.intKey(ci-1) > hi {
			break // child keys start past hi
		}
		if ci < cnt && n.intKey(ci) <= lo {
			continue // child keys end at or before lo
		}
		if ci == 0 {
			children = append(children, n.link())
		} else {
			children = append(children, n.intChild(ci-1))
		}
	}
	t.pool.Release(f)
	total := 0
	for _, c := range children {
		got, cont := t.scanSubtree(c, lo, hi, emit)
		total += got
		if !cont {
			return total, false
		}
	}
	return total, true
}

// Publish makes the current tree state available to Acquire as a new
// immutable version (core.SnapshotReader). It flushes the pool so every
// reachable page is materialized on the device, stamps the root with the
// current epoch, captures a PageView for lock-free readers, advances the
// epoch, and runs retention trimming plus the reclamation pass.
func (t *Tree) Publish() error {
	if !t.mvccOn() {
		return core.ErrNoSnapshots
	}
	t.pool.FlushAll()
	v := &version{
		epoch:  t.epoch,
		root:   t.root,
		height: t.height,
		count:  t.count,
		view:   t.pool.Device().View(),
	}
	t.versions = append(t.versions, v)
	t.epoch++
	t.trimAndReclaim()
	return nil
}

// CheckpointBarrier is Publish for a durability checkpoint rather than a
// reader snapshot: it flushes the pool so every page of the current state is
// materialized on the device, records the state as a published version, and
// advances the epoch — but captures no PageView, because nobody will read
// the version; it exists only to anchor reclamation. While the version sits
// in the retention window, every page it references stays byte-stable on the
// device (copy-on-write plus the reclamation lag of trimAndReclaim), which
// is exactly what a write-ahead log's checkpoint record needs: the root it
// names must still be intact when a crash forces recovery back to it, even
// if later barriers have run since. Versions produced here must not be
// handed to Acquire (their view is nil); the WAL wrapper never publishes
// reader snapshots, so the two uses do not mix.
//
// The barrier fails — changing nothing — if the flush could not write every
// dirty page back; a checkpoint over a half-flushed image would anchor a
// state the device does not hold.
func (t *Tree) CheckpointBarrier() error {
	if !t.mvccOn() {
		return core.ErrNoSnapshots
	}
	t.pool.FlushAll()
	if n := t.pool.DirtyCount(); n != 0 {
		return fmt.Errorf("btree: checkpoint barrier left %d dirty pages", n)
	}
	v := &version{
		epoch:  t.epoch,
		root:   t.root,
		height: t.height,
		count:  t.count,
	}
	t.versions = append(t.versions, v)
	t.epoch++
	t.trimAndReclaim()
	return nil
}

// Acquire returns the newest published version with a reference held, or
// nil if nothing has been published yet (core.SnapshotReader). Writer-side
// call; the returned snapshot's methods are safe from any goroutine.
func (t *Tree) Acquire() core.Snapshot {
	if len(t.versions) == 0 {
		return nil
	}
	v := t.versions[len(t.versions)-1]
	v.refs.Add(1)
	return &Snapshot{v: v, pageSize: t.pool.Device().PageSize()}
}

// SnapshotStats reports the current version state (core.SnapshotReader).
func (t *Tree) SnapshotStats() core.SnapshotStats {
	return core.SnapshotStats{
		Epoch:         t.epoch,
		Versions:      len(t.versions),
		RetainedBytes: uint64(len(t.retired)) * uint64(t.pool.Device().PageSize()),
	}
}

// trimAndReclaim bounds retention to cfg.Versions and frees every retired
// page no live version can reach. A version published at epoch e references
// only pages retired strictly after e, so the reclaimable prefix of the
// retire queue is everything retired at or before the minimum live epoch.
// Versions dropped from the window while still acquired stay live (pinned)
// until their readers release them; the writer-only sweep here is the only
// place refs is allowed to transition a version into reclamation.
func (t *Tree) trimAndReclaim() {
	for len(t.versions) > t.cfg.Versions {
		old := t.versions[0]
		t.versions = t.versions[1:]
		if old.refs.Load() > 0 {
			t.pinned = append(t.pinned, old)
		}
	}
	live := t.pinned[:0]
	for _, v := range t.pinned {
		if v.refs.Load() > 0 {
			live = append(live, v)
		}
	}
	t.pinned = live

	minLive := t.epoch
	for _, v := range t.versions {
		if v.epoch < minLive {
			minLive = v.epoch
		}
	}
	for _, v := range t.pinned {
		if v.epoch < minLive {
			minLive = v.epoch
		}
	}

	i := 0
	for i < len(t.retired) && t.retired[i].epoch <= minLive {
		pid := t.retired[i].pid
		delete(t.allocEpoch, pid)
		_ = t.pool.FreePage(pid)
		i++
	}
	if i > 0 {
		t.retired = append(t.retired[:0], t.retired[i:]...)
	}
}

// Snapshot is an immutable point-in-time view of the tree
// (core.Snapshot). Get and RangeScan are safe for concurrent use from any
// goroutine: they touch only the version's PageView and the caller's own
// meter, with zero coordination. The physical accounting is per page
// touched — snapshot readers run uncached (no shared buffer pool, which
// would need locking), so a point read costs one page read per level.
type Snapshot struct {
	v        *version
	pageSize int
}

// Epoch returns the write epoch the snapshot was published at.
func (s *Snapshot) Epoch() uint64 { return s.v.epoch }

// Len returns the number of records in the snapshot.
func (s *Snapshot) Len() int { return s.v.count }

// Release drops the reference; must be called exactly once.
func (s *Snapshot) Release() { s.v.refs.Add(-1) }

// Get returns the value stored under k as of the snapshot, charging one
// page read per level to m. Allocation-free: the quiet read path.
func (s *Snapshot) Get(k core.Key, m *rum.Meter) (core.Value, bool) {
	pid := s.v.root
	for {
		page := s.v.view.Page(pid)
		m.CountRead(s.v.view.Class(pid), s.pageSize)
		n := node{page}
		if n.isLeaf() {
			i := n.leafSearch(k)
			if i < n.count() && n.leafKey(i) == k {
				return n.leafValue(i), true
			}
			return 0, false
		}
		pid = n.route(k)
	}
}

// RangeScan emits snapshot records with lo <= key <= hi in key order,
// charging one page read per node visited to m.
func (s *Snapshot) RangeScan(lo, hi core.Key, m *rum.Meter, emit func(core.Key, core.Value) bool) int {
	n, _ := s.scan(s.v.root, lo, hi, m, emit)
	return n
}

func (s *Snapshot) scan(pid storage.PageID, lo, hi core.Key, m *rum.Meter, emit func(core.Key, core.Value) bool) (int, bool) {
	page := s.v.view.Page(pid)
	m.CountRead(s.v.view.Class(pid), s.pageSize)
	n := node{page}
	if n.isLeaf() {
		emitted := 0
		for i := n.leafSearch(lo); i < n.count(); i++ {
			k := n.leafKey(i)
			if k > hi {
				return emitted, false
			}
			emitted++
			if !emit(k, n.leafValue(i)) {
				return emitted, false
			}
		}
		return emitted, true
	}
	total := 0
	cnt := n.count()
	for ci := 0; ci <= cnt; ci++ {
		if ci > 0 && n.intKey(ci-1) > hi {
			break
		}
		if ci < cnt && n.intKey(ci) <= lo {
			continue
		}
		child := n.link()
		if ci > 0 {
			child = n.intChild(ci - 1)
		}
		got, cont := s.scan(child, lo, hi, m, emit)
		total += got
		if !cont {
			return total, false
		}
	}
	return total, true
}
