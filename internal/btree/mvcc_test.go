package btree

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

func newMVCCTree(t *testing.T, versions int) *Tree {
	t.Helper()
	return newTestTree(t, 512, 32, Config{Versions: versions})
}

func TestMVCCPublishRequired(t *testing.T) {
	tr := newTestTree(t, 512, 8, Config{})
	if err := tr.Publish(); err != core.ErrNoSnapshots {
		t.Fatalf("Publish on non-MVCC tree: %v, want ErrNoSnapshots", err)
	}
	tr2 := newMVCCTree(t, 2)
	if s := tr2.Acquire(); s != nil {
		t.Fatal("Acquire before first Publish returned a snapshot")
	}
	if err := tr2.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if s := tr2.Acquire(); s == nil {
		t.Fatal("Acquire after Publish returned nil")
	} else {
		s.Release()
	}
}

func TestMVCCSnapshotIsolation(t *testing.T) {
	tr := newMVCCTree(t, 4)
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	snap := tr.Acquire()
	if snap == nil {
		t.Fatal("Acquire returned nil")
	}
	defer snap.Release()

	// Mutate heavily after the publish: updates, deletes, inserts.
	for k := uint64(0); k < 500; k++ {
		if !tr.Update(k, k+1000) {
			t.Fatalf("Update(%d) missed", k)
		}
	}
	for k := uint64(0); k < 100; k++ {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	for k := uint64(500); k < 900; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}

	// The snapshot still sees the published state, exactly.
	var m rum.Meter
	if snap.Len() != 500 {
		t.Fatalf("snap.Len = %d, want 500", snap.Len())
	}
	for k := uint64(0); k < 500; k++ {
		v, ok := snap.Get(k, &m)
		if !ok || v != k {
			t.Fatalf("snap.Get(%d) = %d,%v; want %d,true", k, v, ok, k)
		}
	}
	if _, ok := snap.Get(700, &m); ok {
		t.Fatal("snap.Get(700) sees a post-publish insert")
	}
	want := uint64(0)
	n := snap.RangeScan(0, ^uint64(0), &m, func(k core.Key, v core.Value) bool {
		if k != want || v != want {
			t.Fatalf("snap scan got (%d,%d), want (%d,%d)", k, v, want, want)
		}
		want++
		return true
	})
	if n != 500 {
		t.Fatalf("snap scan emitted %d, want 500", n)
	}
	if m.BaseRead+m.AuxRead == 0 {
		t.Fatal("snapshot reads charged no physical traffic")
	}

	// The live tree sees the mutations.
	if tr.Len() != 800 {
		t.Fatalf("tree.Len = %d, want 800", tr.Len())
	}
	if v, ok := tr.Get(250); !ok || v != 1250 {
		t.Fatalf("tree.Get(250) = %d,%v; want 1250,true", v, ok)
	}
	if _, ok := tr.Get(50); ok {
		t.Fatal("tree.Get(50) sees a deleted key")
	}
}

func TestMVCCScanMatchesSorted(t *testing.T) {
	tr := newMVCCTree(t, 2)
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(2000)
	for _, k := range keys {
		if err := tr.Insert(uint64(k), uint64(k)*3); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// MVCC live-tree scans descend without the leaf chain; verify order and
	// bounds against the obvious answer.
	lo, hi := uint64(137), uint64(1620)
	var got []uint64
	tr.RangeScan(lo, hi, func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	if len(got) != int(hi-lo+1) {
		t.Fatalf("scan emitted %d keys, want %d", len(got), hi-lo+1)
	}
	for i, k := range got {
		if k != lo+uint64(i) {
			t.Fatalf("scan out of order at %d: got %d want %d", i, k, lo+uint64(i))
		}
	}
}

func TestMVCCEpochsMonotone(t *testing.T) {
	tr := newMVCCTree(t, 2)
	var last uint64
	for i := 0; i < 10; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tr.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		s := tr.Acquire()
		if s.Epoch() <= last {
			t.Fatalf("epoch %d not greater than previous %d", s.Epoch(), last)
		}
		last = s.Epoch()
		s.Release()
	}
}

func TestMVCCReclamation(t *testing.T) {
	tr := newMVCCTree(t, 2)
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	base := tr.Pool().Device().LivePages()

	// Many publish cycles with updates in between. With retention bounded at
	// 2 versions and no outstanding snapshots, reclamation must keep the
	// device from growing without bound.
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 30; round++ {
		for i := 0; i < 50; i++ {
			k := uint64(rng.Intn(2000))
			if !tr.Update(k, k+uint64(round)) {
				t.Fatalf("Update(%d) missed", k)
			}
		}
		if err := tr.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	live := tr.Pool().Device().LivePages()
	if live > base*3 {
		t.Fatalf("device grew from %d to %d live pages: reclamation is not keeping up", base, live)
	}
	st := tr.SnapshotStats()
	if st.Versions != 2 {
		t.Fatalf("retained versions = %d, want 2", st.Versions)
	}

	// A pinned out-of-window snapshot blocks reclamation of its pages until
	// released; afterwards the next publish reclaims them.
	snap := tr.Acquire()
	for round := 0; round < 10; round++ {
		for i := 0; i < 50; i++ {
			k := uint64(rng.Intn(2000))
			tr.Update(k, k)
		}
		if err := tr.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	pinnedLive := tr.Pool().Device().LivePages()
	var m rum.Meter
	if _, ok := snap.Get(42, &m); !ok {
		t.Fatal("pinned snapshot lost key 42")
	}
	snap.Release()
	tr.Update(1, 1)
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	released := tr.Pool().Device().LivePages()
	if released >= pinnedLive {
		t.Fatalf("releasing the pinned snapshot freed nothing (%d -> %d live pages)", pinnedLive, released)
	}
}

func TestMVCCSizeCountsRetained(t *testing.T) {
	tr := newMVCCTree(t, 4)
	for k := uint64(0); k < 1000; k++ {
		tr.Insert(k, k)
	}
	if err := tr.Publish(); err != nil {
		t.Fatal(err)
	}
	before := tr.Size()
	for k := uint64(0); k < 1000; k += 10 {
		tr.Update(k, k+1)
	}
	after := tr.Size()
	if after.AuxBytes <= before.AuxBytes {
		t.Fatalf("AuxBytes did not grow with retired pages: %d -> %d", before.AuxBytes, after.AuxBytes)
	}
	if tr.Stats().CowCopies == 0 {
		t.Fatal("no copy-on-write copies counted")
	}
}

// TestMVCCConcurrentReaders is the btree-level half of the single-writer/
// many-reader contract: one goroutine keeps mutating and publishing while
// eight readers hammer an acquired snapshot. Run with -race; the interesting
// assertion is that the race detector and the torn-read checks stay silent.
func TestMVCCConcurrentReaders(t *testing.T) {
	tr := newMVCCTree(t, 3)
	const n = 3000
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(k, k^0xabcd); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	snap := tr.Acquire()

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var m rum.Meter
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(n))
				v, ok := snap.Get(k, &m)
				if !ok || v != k^0xabcd {
					errs <- "torn or stale read"
					return
				}
			}
		}(int64(r))
	}

	// Writer: mutate and publish concurrently with the readers.
	for round := 0; round < 40; round++ {
		for i := 0; i < 100; i++ {
			k := uint64((round*100 + i) % n)
			tr.Update(k, uint64(round))
		}
		if err := tr.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	snap.Release()
}

// TestSnapshotGetAllocs pins the quiet read path at zero allocations.
func TestSnapshotGetAllocs(t *testing.T) {
	tr := newMVCCTree(t, 2)
	for k := uint64(0); k < 5000; k++ {
		tr.Insert(k, k)
	}
	if err := tr.Publish(); err != nil {
		t.Fatal(err)
	}
	snap := tr.Acquire()
	defer snap.Release()
	var m rum.Meter
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := snap.Get(2500, &m); !ok {
			t.Fatal("lost key")
		}
	})
	if allocs != 0 {
		t.Fatalf("snapshot Get allocates %v per op, want 0", allocs)
	}
}

// BenchmarkSnapshotGet guards the quiet read path: a snapshot point read
// must stay allocation-free and lock-free.
func BenchmarkSnapshotGet(b *testing.B) {
	dev := storage.NewDevice(4096, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 256)
	tr, err := New(pool, Config{Versions: 2})
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(0); k < 100000; k++ {
		tr.Insert(k, k)
	}
	if err := tr.Publish(); err != nil {
		b.Fatal(err)
	}
	snap := tr.Acquire()
	defer snap.Release()
	var m rum.Meter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := snap.Get(uint64(i)%100000, &m); !ok {
			b.Fatal("lost key")
		}
	}
}
