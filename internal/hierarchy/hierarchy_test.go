package hierarchy

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func newH(t *testing.T, cacheCap, ramCap, dataPages int) *Hierarchy {
	t.Helper()
	h, err := New(4096, []Level{
		{Name: "cache", Capacity: cacheCap, Medium: storage.RAM},
		{Name: "ram", Capacity: ramCap, Medium: storage.RAM},
		{Name: "disk", Medium: storage.HDD},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Populate(dataPages)
	return h
}

func TestValidation(t *testing.T) {
	if _, err := New(4096, []Level{{Name: "one"}}); err == nil {
		t.Fatal("single level accepted")
	}
	if _, err := New(0, []Level{{Name: "a", Capacity: 1}, {Name: "b"}}); err == nil {
		t.Fatal("zero page size accepted")
	}
	if _, err := New(4096, []Level{{Name: "a"}, {Name: "b"}}); err == nil {
		t.Fatal("capacity-less upper level accepted")
	}
}

func TestReadServedByBottomThenCached(t *testing.T) {
	h := newH(t, 2, 8, 100)
	lvl := h.Read(5)
	if lvl != 2 {
		t.Fatalf("cold read served by level %d", lvl)
	}
	// Promoted into every level above: next read hits the cache.
	if lvl := h.Read(5); lvl != 0 {
		t.Fatalf("warm read served by level %d", lvl)
	}
	if h.Levels()[0].Hits() != 1 {
		t.Fatal("cache hit not counted")
	}
}

func TestInclusiveCachingEviction(t *testing.T) {
	h := newH(t, 2, 4, 100)
	for p := uint64(0); p < 10; p++ {
		h.Read(p)
	}
	if got := h.Levels()[0].Resident(); got != 2 {
		t.Fatalf("cache resident %d", got)
	}
	if got := h.Levels()[1].Resident(); got != 4 {
		t.Fatalf("ram resident %d", got)
	}
	// Bottom keeps everything.
	if got := h.Levels()[2].Resident(); got != 100 {
		t.Fatalf("disk resident %d", got)
	}
}

func TestWriteBackCascades(t *testing.T) {
	h := newH(t, 1, 2, 10)
	h.Write(1)
	h.Write(2) // evicts dirty page 1 from cache → write charged at ram
	if h.Levels()[1].Meter().PhysicalWritten() == 0 {
		t.Fatal("dirty eviction did not charge the level below")
	}
	h.FlushAll()
	if h.Levels()[2].Meter().PhysicalWritten() == 0 {
		t.Fatal("flush did not reach the bottom")
	}
}

func TestUnknownPageChargesBottom(t *testing.T) {
	h := newH(t, 2, 4, 10)
	before := h.Levels()[2].Meter().PhysicalRead()
	if lvl := h.Read(999); lvl != 2 {
		t.Fatalf("unknown page served by %d", lvl)
	}
	if h.Levels()[2].Meter().PhysicalRead() <= before {
		t.Fatal("unknown page read not charged")
	}
}

func TestSpaceAmplificationPerLevel(t *testing.T) {
	h := newH(t, 5, 20, 100)
	for p := uint64(0); p < 50; p++ {
		h.Read(p)
	}
	if mo := h.SpaceAmplification(2); mo != 1.0 {
		t.Fatalf("bottom MO %v", mo)
	}
	if mo := h.SpaceAmplification(1); mo != 0.2 {
		t.Fatalf("ram MO %v, want 0.2", mo)
	}
	if mo := h.SpaceAmplification(0); mo != 0.05 {
		t.Fatalf("cache MO %v, want 0.05", mo)
	}
}

// TestFigure2Monotonicity: the paper's Figure-2 interaction on this exact
// simulator — more capacity at level n−1 means fewer reads reaching level n.
func TestFigure2Monotonicity(t *testing.T) {
	diskReads := func(ramCap int) uint64 {
		h := newH(t, 4, ramCap, 400)
		rng := rand.New(rand.NewSource(1))
		zipf := rand.NewZipf(rng, 1.2, 1, 399)
		for i := 0; i < 20000; i++ {
			h.Read(zipf.Uint64())
		}
		return h.Levels()[2].Meter().PhysicalRead()
	}
	prev := diskReads(4)
	for _, cap := range []int{16, 64, 256} {
		cur := diskReads(cap)
		if cur > prev {
			t.Fatalf("disk reads grew with ram capacity %d: %d > %d", cap, cur, prev)
		}
		prev = cur
	}
}

func TestRePopulateIdempotent(t *testing.T) {
	h := newH(t, 2, 4, 10)
	h.Populate(10)
	if h.Levels()[2].Resident() != 10 {
		t.Fatal("double populate duplicated pages")
	}
}
