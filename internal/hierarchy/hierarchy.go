// Package hierarchy simulates the memory/storage hierarchy of Figure 2:
// data lives persistently at the bottom level and is replicated, in various
// forms, across the levels above, each with its own capacity and access
// cost. Every level carries its own RUM meter, so the figure's claim can be
// measured directly: the read and write overheads RO(n), UO(n) at level n
// can be reduced by storing more data at level n-1 — which raises MO(n-1).
package hierarchy

import (
	"container/list"
	"fmt"

	"repro/internal/rum"
	"repro/internal/storage"
)

// Level is one tier of the hierarchy (e.g. cache, RAM, SSD, disk).
type Level struct {
	Name     string
	Capacity int // pages this level can hold; <= 0 means unbounded (bottom)
	Medium   storage.Medium

	meter   rum.Meter
	frames  map[uint64]*list.Element // page → lru element
	lru     *list.List               // front = most recent; values are pageEntry
	hits    uint64
	misses  uint64
	evicted uint64
}

type pageEntry struct {
	page  uint64
	dirty bool
}

// Meter returns this level's RUM accounting.
func (l *Level) Meter() *rum.Meter { return &l.meter }

// Hits and Misses report this level's cache behaviour.
func (l *Level) Hits() uint64 { return l.hits }

// Misses reports requests this level could not serve.
func (l *Level) Misses() uint64 { return l.misses }

// Resident returns the number of pages currently held.
func (l *Level) Resident() int { return len(l.frames) }

func (l *Level) unbounded() bool { return l.Capacity <= 0 }

// Hierarchy is a stack of levels; index 0 is the top (fastest, smallest) and
// the last level is the unbounded persistent bottom. Not safe for concurrent
// use.
type Hierarchy struct {
	levels   []*Level
	pageSize int
	dataSet  map[uint64]bool // pages that exist (for MO denominators)
}

// New builds a hierarchy from the given level specs; the last level is
// forced unbounded (persistent home of the data).
func New(pageSize int, levels []Level) (*Hierarchy, error) {
	if len(levels) < 2 {
		return nil, fmt.Errorf("hierarchy: need at least two levels")
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("hierarchy: page size must be positive")
	}
	h := &Hierarchy{pageSize: pageSize, dataSet: make(map[uint64]bool)}
	for i := range levels {
		l := levels[i]
		if i == len(levels)-1 {
			l.Capacity = 0 // bottom is unbounded
		} else if l.Capacity <= 0 {
			return nil, fmt.Errorf("hierarchy: level %d (%s) needs a capacity", i, l.Name)
		}
		l.frames = make(map[uint64]*list.Element)
		l.lru = list.New()
		h.levels = append(h.levels, &l)
	}
	return h, nil
}

// Levels returns the stacked levels, top first.
func (h *Hierarchy) Levels() []*Level { return h.levels }

// PageSize returns the unit of transfer.
func (h *Hierarchy) PageSize() int { return h.pageSize }

// Populate installs n pages of base data at the bottom level.
func (h *Hierarchy) Populate(n int) {
	bottom := h.levels[len(h.levels)-1]
	for p := uint64(0); p < uint64(n); p++ {
		h.dataSet[p] = true
		if _, ok := bottom.frames[p]; !ok {
			bottom.frames[p] = bottom.lru.PushFront(&pageEntry{page: p})
		}
	}
}

// install places page p at level i, evicting as needed; dirty evictions are
// written one level down (recursively).
func (h *Hierarchy) install(i int, p uint64, dirty bool) {
	l := h.levels[i]
	if e, ok := l.frames[p]; ok {
		ent := e.Value.(*pageEntry)
		ent.dirty = ent.dirty || dirty
		l.lru.MoveToFront(e)
		return
	}
	if !l.unbounded() && len(l.frames) >= l.Capacity {
		// Evict LRU.
		back := l.lru.Back()
		if back != nil {
			ent := back.Value.(*pageEntry)
			l.lru.Remove(back)
			delete(l.frames, ent.page)
			l.evicted++
			if ent.dirty && i+1 < len(h.levels) {
				// Write-back one level down.
				h.levels[i+1].meter.CountWrite(rum.Base, h.pageSize)
				h.install(i+1, ent.page, true)
			}
		}
	}
	l.frames[p] = l.lru.PushFront(&pageEntry{page: p, dirty: dirty})
}

// Read serves a page request, probing levels top-down. The level that serves
// the request is charged a page read; the page is then promoted into every
// level above (inclusive caching), each charged a page write for the fill.
// It returns the index of the serving level.
func (h *Hierarchy) Read(p uint64) int {
	for i, l := range h.levels {
		if _, ok := l.frames[p]; ok {
			l.hits++
			l.meter.CountRead(rum.Base, h.pageSize)
			l.meter.CountLogicalRead(h.pageSize)
			if e := l.frames[p]; e != nil {
				l.lru.MoveToFront(e)
			}
			for j := i - 1; j >= 0; j-- {
				h.levels[j].meter.CountWrite(rum.Aux, h.pageSize) // cache fill
				h.install(j, p, false)
			}
			return i
		}
		l.misses++
	}
	// Unknown page: charge the bottom as a full miss.
	bottom := len(h.levels) - 1
	h.levels[bottom].meter.CountRead(rum.Base, h.pageSize)
	h.levels[bottom].meter.CountLogicalRead(h.pageSize)
	return bottom
}

// Write dirties a page at the top level (write-back caching): the top is
// charged the page write; lower levels only pay when dirty pages are evicted
// toward them.
func (h *Hierarchy) Write(p uint64) {
	h.dataSet[p] = true
	top := h.levels[0]
	top.meter.CountWrite(rum.Base, h.pageSize)
	top.meter.CountLogicalWrite(h.pageSize)
	h.install(0, p, true)
}

// FlushAll forces every dirty page down to the bottom, charging write-backs
// level by level.
func (h *Hierarchy) FlushAll() {
	for i := 0; i < len(h.levels)-1; i++ {
		l := h.levels[i]
		for e := l.lru.Front(); e != nil; e = e.Next() {
			ent := e.Value.(*pageEntry)
			if ent.dirty {
				h.levels[i+1].meter.CountWrite(rum.Base, h.pageSize)
				h.install(i+1, ent.page, true)
				ent.dirty = false
			}
		}
	}
	// Bottom pages are home; mark clean.
	bottom := h.levels[len(h.levels)-1]
	for e := bottom.lru.Front(); e != nil; e = e.Next() {
		e.Value.(*pageEntry).dirty = false
	}
}

// SpaceAmplification returns MO at level i: bytes resident at that level
// relative to the base data size. The bottom level's MO is 1.0 by
// construction; upper levels add replication overhead.
func (h *Hierarchy) SpaceAmplification(i int) float64 {
	base := uint64(len(h.dataSet)) * uint64(h.pageSize)
	if base == 0 {
		return 0
	}
	resident := uint64(h.levels[i].Resident()) * uint64(h.pageSize)
	return float64(resident) / float64(base)
}
