// Package repro reproduces "Designing Access Methods: The RUM Conjecture"
// (Athanassoulis et al., EDBT 2016) as a library of instrumented access
// methods over a simulated storage substrate, plus the experiment harness
// that regenerates every artifact of the paper — the Section-2
// propositions, Table 1, Figures 1–3, the Section-3 conjecture grid, and
// the Section-4/5 adaptivity results — from measurements.
//
// Beyond the paper's happy path, internal/faults adds a deterministic
// fault-injection and crash-consistency layer (transient/permanent device
// faults, torn writes, crash points, per-method recovery contracts),
// exercised by the chaos experiment (rumbench -exp chaos -faults ...).
//
// See README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each table and figure:
//
//	go test -bench=. -benchmem
package repro
