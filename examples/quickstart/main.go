// Quickstart: build an access method, run a workload against it, and read
// its RUM profile — the three overheads of the RUM Conjecture measured on
// your own workload.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/rum"
	"repro/internal/workload"
)

func main() {
	// 1. Pick a structure from the catalog. Page-based structures run on a
	//    simulated device; Options sets the page size, buffer pool (the MEM
	//    of the paper's cost model), and medium.
	opt := methods.Options{PageSize: 4096, PoolPages: 16}
	spec, err := methods.Lookup(opt, "btree")
	if err != nil {
		log.Fatal(err)
	}
	store := spec.New()

	// 2. Use it like any key-value store.
	if err := store.Insert(42, 4200); err != nil {
		log.Fatal(err)
	}
	if v, ok := store.Get(42); ok {
		fmt.Printf("Get(42) = %d\n", v)
	}
	store.Update(42, 4300)
	store.RangeScan(0, 100, func(k core.Key, v core.Value) bool {
		fmt.Printf("scan: %d -> %d\n", k, v)
		return true
	})
	store.Delete(42)

	// 3. Profile it under a workload: 64k records, 20k mixed operations.
	gen := workload.New(workload.Config{
		Seed:       1,
		Mix:        workload.Balanced,
		InitialLen: 1 << 16,
		RangeLen:   1 << 30,
	})
	fresh := spec.New()
	prof, err := core.RunProfile(fresh, gen, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRUM profile of %s under the balanced mix:\n", prof.Name)
	fmt.Printf("  read amplification  RO = %.2f\n", prof.Point.R)
	fmt.Printf("  write amplification UO = %.2f\n", prof.Point.U)
	fmt.Printf("  space amplification MO = %.3f\n", prof.Point.M)
	fmt.Printf("  ops: %d gets (%d hits), %d ranges (%d rows), %d inserts, %d updates, %d deletes\n",
		prof.Ops.Gets, prof.Ops.Hits, prof.Ops.Ranges, prof.Ops.RangeRows,
		prof.Ops.Inserts, prof.Ops.Updates, prof.Ops.Deletes)

	// 4. Compare a few structures in the RUM triangle.
	var pts []bench.NamedPoint
	var raw []rum.Point
	for _, name := range []string{"btree", "hash", "lsm-tier", "zonemap"} {
		s, err := methods.Lookup(opt, name)
		if err != nil {
			log.Fatal(err)
		}
		g := workload.New(workload.Config{Seed: 1, Mix: workload.Balanced, InitialLen: 1 << 14, RangeLen: 1 << 30})
		p, err := core.RunProfile(s.New(), g, 8000)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, bench.NamedPoint{Label: name, Point: p.Point})
		raw = append(raw, p.Point)
	}
	ws := rum.RelativeWeights(raw)
	for i := range pts {
		w := ws[i]
		pts[i].W = &w
	}
	fmt.Println("\nWhere they sit in the RUM triangle (relative to each other):")
	fmt.Println(bench.RenderTriangle(pts, 45))
}
