// Adaptive scenario: a workload that shifts from read-heavy to write-heavy
// to scan-heavy. Static structures are stuck at their point in the RUM
// space; the two adaptive designs of the paper react: database cracking
// accretes index structure where queries land, and the Section-5 morphing
// engine physically changes shape between phases.
package main

import (
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/cracking"
	"repro/internal/lsm"
	"repro/internal/methods"
	"repro/internal/workload"
)

const (
	preload  = 1 << 15
	phaseOps = 12000
)

func main() {
	// --- Part 1: cracking converges on a query region ---
	fmt.Println("Database cracking: 300 range queries against an unordered column")
	cr := core.Instrument(cracking.New(1<<20, nil))
	gen := workload.New(workload.Config{Seed: 3, Mix: workload.LookupOnly, InitialLen: preload})
	// Load in arrival (unsorted) order: cracking's whole point is to add
	// structure lazily, so don't hand it sorted data.
	recs := make([]core.Record, 0, preload)
	for _, op := range gen.InitialRecords() {
		recs = append(recs, core.Record{Key: op.Key, Value: op.Value})
	}
	if err := cr.Unwrap().(*cracking.Store).BulkLoad(recs); err != nil {
		log.Fatal(err)
	}
	keys := gen.LiveKeys()
	inner := cr.Unwrap().(*cracking.Store)
	for _, batch := range []int{1, 9, 40, 50, 100, 100} {
		before := cr.Meter().Snapshot()
		for q := 0; q < batch; q++ {
			lo := keys[(q*7919)%len(keys)]
			cr.RangeScan(lo, lo+(1<<28), func(core.Key, core.Value) bool { return true })
		}
		d := cr.Meter().Diff(before)
		fmt.Printf("  after %4d more queries: %8.0f KiB read/query, %5d pieces, %7d swaps so far\n",
			batch, float64(d.PhysicalRead())/float64(batch)/1024, inner.Pieces(), inner.Stats().Swaps)
	}

	// --- Part 2: morphing engine vs. static structures across phases ---
	fmt.Println("\nMorphing engine across three workload phases (read-heavy → write-heavy → scan-heavy):")
	opt := methods.Options{PoolPages: 16}
	morph, err := core.NewMorphing(methods.Flavors(opt), 0, core.MorphPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	engines := []struct {
		name string
		am   core.AccessMethod
	}{
		{"morphing", morph},
		{"static btree", methods.NewBTree(opt, btree.Config{})},
		{"static lsm", methods.NewLSM(opt, lsm.Config{MemtableRecords: 1024, SizeRatio: 8})},
	}
	phases := []struct {
		name string
		mix  workload.Mix
	}{
		{"read-heavy", workload.ReadHeavy},
		{"write-heavy", workload.WriteHeavy},
		{"scan-heavy", workload.ScanHeavy},
	}
	for _, e := range engines {
		w := core.Instrument(e.am)
		gen := workload.New(workload.Config{Seed: 5, Mix: workload.ReadHeavy, InitialLen: preload / 2, RangeLen: 1 << 30})
		if err := core.Preload(w.Unwrap(), gen); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s", e.name)
		var total uint64
		for _, ph := range phases {
			pgen := workload.New(workload.Config{Seed: 11, Mix: ph.mix, RangeLen: 1 << 30})
			seedLive(pgen, w)
			before := w.Meter().Snapshot()
			var st core.OpStats
			for i := 0; i < phaseOps; i++ {
				core.Apply(w, pgen.Next(), &st)
			}
			w.Flush()
			d := w.Meter().Diff(before)
			moved := d.PhysicalRead() + d.PhysicalWritten()
			total += moved
			shape := ""
			if m, ok := e.am.(*core.Morphing); ok {
				shape = " [" + m.CurrentFlavor() + "]"
			}
			fmt.Printf("  %s: %6.1f MiB%s", ph.name, float64(moved)/(1<<20), shape)
		}
		fmt.Printf("  | total %.1f MiB\n", float64(total)/(1<<20))
	}
	if m, ok := engines[0].am.(*core.Morphing); ok {
		fmt.Printf("\nThe morphing engine migrated %d times — \"access methods that can\n"+
			"automatically and dynamically adapt to new workload requirements\" (Section 5).\n", m.Migrations())
	}
}

func seedLive(gen *workload.Generator, w *core.Instrumented) {
	count := 0
	w.Unwrap().RangeScan(0, ^core.Key(0), func(k core.Key, _ core.Value) bool {
		gen.RegisterLive(k)
		count++
		return count < 4096
	})
}
