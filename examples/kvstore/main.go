// KV-store scenario: a write-heavy key-value service (session store,
// metrics ingest) compared across a B+-tree, a hash index, and LSM-trees in
// both compaction modes — the workload that motivates write-optimized
// differential structures, measured in RUM terms on flash-like storage
// where write amplification costs endurance.
package main

import (
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/hashindex"
	"repro/internal/lsm"
	"repro/internal/methods"
	"repro/internal/storage"
	"repro/internal/workload"
)

const (
	preload = 1 << 15
	churn   = 40000
)

func main() {
	opt := methods.Options{PageSize: 4096, PoolPages: 16, Medium: storage.SSD}

	candidates := []struct {
		name string
		am   *core.Instrumented
	}{
		{"btree", methods.NewBTree(opt, btree.Config{})},
		{"hash", methods.NewHash(opt, hashindex.Config{})},
		{"lsm leveling", methods.NewLSM(opt, lsm.Config{MemtableRecords: 2048, SizeRatio: 10, BloomBitsPerKey: 10})},
		{"lsm tiering", methods.NewLSM(opt, lsm.Config{MemtableRecords: 2048, SizeRatio: 10, Tiering: true, BloomBitsPerKey: 10})},
	}

	fmt.Printf("Write-heavy KV service: %d records preloaded, %d ops (60%% insert, 30%% update, 10%% read), SSD costs\n\n",
		preload, churn)
	fmt.Printf("%-14s %10s %10s %10s %14s %12s\n", "engine", "RO", "UO", "MO", "device writes", "cost units")

	for _, c := range candidates {
		gen := workload.New(workload.Config{
			Seed:       7,
			Mix:        workload.WriteHeavy,
			InitialLen: preload,
			RangeLen:   1 << 28,
		})
		prof, err := core.RunProfile(c.am, gen, churn)
		if err != nil {
			log.Fatal(err)
		}
		// Device-level cost: SSD writes are 5x reads in the simulator, the
		// flash asymmetry of Section 2.
		var devWrites, costUnits uint64
		if d := deviceOf(c.am); d != nil {
			st := d.Stats()
			devWrites = st.PageWrites
			costUnits = st.CostUnits
		}
		fmt.Printf("%-14s %10.2f %10.2f %10.3f %14d %12d\n",
			c.name, prof.Point.R, prof.Point.U, prof.Point.M, devWrites, costUnits)
	}

	fmt.Println(`
Reading the result:
  - Both LSMs show far lower write amplification (UO) than the in-place
    B+-tree and hash index: updates are absorbed in the memtable and merged
    sequentially instead of rewriting a 4 KiB page per 16-byte record.
  - Tiering writes even less than leveling (lazier merging) but holds more
    duplicate, not-yet-merged data (higher MO): one knob, three overheads —
    the RUM tradeoff.
  - On endurance-limited flash, device writes and cost units are the numbers
    that decide: the paper's point that hardware shifts RUM priorities.`)
}

// deviceOf digs the simulated device out of an instrumented structure.
func deviceOf(am *core.Instrumented) *storage.Device {
	type pooled interface{ Pool() *storage.BufferPool }
	switch s := am.Unwrap().(type) {
	case pooled:
		return s.Pool().Device()
	default:
		return nil
	}
}
