// Analytics scenario: a scan-heavy warehouse workload (wide range
// predicates over a fact table, plus a low-cardinality categorical filter)
// served by space-optimized structures — zone maps pruning partitions, a
// compressed bitmap index answering categorical queries, and a sorted
// column — against a full-scan baseline. The space corner of the RUM
// triangle: tiny auxiliary structures buying scan pruning.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/imprints"
	"repro/internal/rum"
	"repro/internal/zonemap"
)

const (
	rows    = 1 << 17
	queries = 200
	span    = 1 << 10 // range width in row positions
)

func main() {
	// The fact table: rows keyed by a (clustered) row id; the value carries
	// a 16-way category code, the kind of column bitmaps excel at.
	rng := rand.New(rand.NewSource(42))
	recs := make([]core.Record, rows)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(rng.Intn(16))}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Key < recs[b].Key })

	heap := core.Instrument(column.NewUnsorted(nil))
	sorted := core.Instrument(column.NewSorted(nil))
	zm := core.Instrument(zonemap.New(512, nil))
	bm := core.Instrument(bitmap.New(bitmap.Config{Cardinality: 16, MergeThreshold: 1024}, nil))
	for _, am := range []*core.Instrumented{heap, sorted, zm, bm} {
		if err := am.BulkLoad(recs); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("Warehouse fact table: %d rows, %d range queries of ~%d rows each\n\n", rows, queries, span)
	fmt.Printf("%-18s %14s %14s %10s\n", "structure", "bytes read/qry", "index bytes", "MO")

	type cand struct {
		name string
		am   *core.Instrumented
	}
	for _, c := range []cand{
		{"full scan (heap)", heap},
		{"sorted column", sorted},
		{"zonemap P=512", zm},
	} {
		qrng := rand.New(rand.NewSource(7))
		before := c.am.Meter().Snapshot()
		for q := 0; q < queries; q++ {
			lo := uint64(qrng.Intn(rows - span))
			c.am.RangeScan(lo, lo+span-1, func(core.Key, core.Value) bool { return true })
		}
		d := c.am.Meter().Diff(before)
		size := c.am.Size()
		fmt.Printf("%-18s %14s %14d %10.4f\n",
			c.name, fmtBytes(float64(d.PhysicalRead())/queries), size.AuxBytes, size.SpaceAmplification())
	}

	// Categorical query: "rows where category = 7" — the bitmap's home turf.
	fmt.Printf("\nCategorical filter (category = 7 over all %d rows):\n", rows)
	bmInner := bm.Unwrap().(*bitmap.Index)
	before := bm.Meter().Snapshot()
	matches := bmInner.Rows(7, func(uint64) bool { return true })
	bmBytes := bm.Meter().Diff(before).PhysicalRead()

	before = heap.Meter().Snapshot()
	heapMatches := 0
	heap.RangeScan(0, ^core.Key(0), func(_ core.Key, v core.Value) bool {
		if v == 7 {
			heapMatches++
		}
		return true
	})
	heapBytes := heap.Meter().Diff(before).PhysicalRead()

	fmt.Printf("  bitmap index: %d matches, %s read, index stores %.2f bytes/row\n",
		matches, fmtBytes(float64(bmBytes)), float64(bm.Size().Total())/float64(rows))
	fmt.Printf("  full scan:    %d matches, %s read\n", heapMatches, fmtBytes(float64(heapBytes)))
	fmt.Printf("  pruning factor: %.1fx less data read\n", float64(heapBytes)/float64(bmBytes))

	// Measure predicate over an *unsorted* measure column: zone maps cannot
	// prune (every partition spans the whole value domain), column imprints
	// can (Sidirourgos & Kersten, cited in §4).
	fmt.Printf("\nMeasure predicate (revenue in a 0.5%% band) over %d unsorted values:\n", rows)
	imp := imprints.New(nil)
	impRecs := make([]core.Record, rows)
	vrng := rand.New(rand.NewSource(99))
	for i := range impRecs {
		impRecs[i] = core.Record{Key: uint64(i), Value: uint64(vrng.Intn(1 << 30))}
	}
	if err := imp.BulkLoad(impRecs); err != nil {
		log.Fatal(err)
	}
	before = imp.Meter().Snapshot()
	hits := imp.ScanValues(0, 1<<22, func(core.Key, core.Value) bool { return true })
	impBytes := imp.Meter().Diff(before).PhysicalRead()
	before = imp.Meter().Snapshot()
	imp.FullScan(0, 1<<22, func(core.Key, core.Value) bool { return true })
	fullBytes := imp.Meter().Diff(before).PhysicalRead()
	fmt.Printf("  imprints:  %d matches, %s read, index %.1f bits/row\n",
		hits, fmtBytes(float64(impBytes)), float64(imp.Size().AuxBytes*8)/float64(rows))
	fmt.Printf("  full scan: %s read — pruning factor %.1fx on data no zone map can prune\n",
		fmtBytes(float64(fullBytes)), float64(fullBytes)/float64(impBytes))

	fmt.Println(`
Reading the result:
  - The zone map answers range queries reading only the qualifying
    partitions plus a few KiB of summaries, with an index thousands of times
    smaller than a B+-tree would be: read pruning almost for free in space.
  - The compressed bitmap answers the categorical filter reading only one
    value's bitvector instead of the whole table.
  - The price is on the other RUM axes: in-place updates to compressed
    bitmaps need delta absorption and merging, and zone maps give up
    point-query speed — space-optimized, per the conjecture, not free.`)
	_ = rum.Point{}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
