package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/workload"
)

// The experiment benchmarks: one per table/figure of the paper. Each
// iteration regenerates the artifact at a moderate size; run a single
// iteration with -benchtime=1x to print nothing but still measure cost, or
// use cmd/rumbench for the rendered outputs.

var benchCfg = bench.Config{Seed: 1, N: 1 << 14, Ops: 8000}

func BenchmarkProps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunProps(benchCfg)
		for _, p := range r.Results {
			if !p.Holds {
				b.Fatalf("Prop %d violated", p.Prop)
			}
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunTable1(benchCfg, []int{1 << 12, 1 << 14}, 128)
		if len(r.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig1(benchCfg)
		if r.ChecksOK != len(r.Checks) {
			b.Fatalf("%d/%d fig1 orderings hold", r.ChecksOK, len(r.Checks))
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig2(benchCfg)
		if !r.Monotone {
			b.Fatal("fig2 not monotone")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	cfg := bench.Config{Seed: 1, N: 4096, Ops: 2500}
	for i := 0; i < b.N; i++ {
		r := bench.RunFig3(cfg)
		if len(r.Families) == 0 {
			b.Fatal("no families")
		}
	}
}

func BenchmarkConjecture(b *testing.B) {
	cfg := bench.Config{Seed: 1, N: 4096, Ops: 2500}
	for i := 0; i < b.N; i++ {
		r := bench.RunConjecture(cfg)
		if r.Dominant {
			b.Fatal("dominant configuration")
		}
	}
}

func BenchmarkAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunAdaptive(benchCfg)
		if !r.Converged {
			b.Fatal("cracking did not converge")
		}
	}
}

// Micro-benchmarks: per-structure operation costs in wall-clock terms (the
// RUM meters measure data movement; these measure CPU).

const microN = 1 << 15

func preloaded(b *testing.B, name string) *core.Instrumented {
	b.Helper()
	spec, err := methods.Lookup(methods.Options{PoolPages: 64}, name)
	if err != nil {
		b.Fatal(err)
	}
	am := spec.New()
	gen := workload.New(workload.Config{Seed: 1, Mix: workload.LookupOnly, InitialLen: microN})
	if err := core.Preload(am, gen); err != nil {
		b.Fatal(err)
	}
	return am
}

var microMethods = []string{
	"btree", "hash", "skiplist", "trie", "lsm-level", "lsm-tier",
	"zonemap", "bitmap", "sorted-column", "cracking",
}

func BenchmarkGet(b *testing.B) {
	for _, name := range microMethods {
		b.Run(name, func(b *testing.B) {
			am := preloaded(b, name)
			gen := workload.New(workload.Config{Seed: 2, Mix: workload.LookupOnly, InitialLen: microN})
			keys := make([]uint64, 0, microN)
			for _, op := range gen.InitialRecords() {
				keys = append(keys, op.Key)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				am.Get(keys[i%len(keys)])
			}
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	for _, name := range microMethods {
		b.Run(name, func(b *testing.B) {
			if name == "sorted-column" && b.N > 1<<16 {
				b.Skip("quadratic under mass inserts")
			}
			am := preloaded(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh scattered keys beyond the preload domain.
				k := (uint64(i)*0x9e3779b97f4a7c15)>>20 | 1<<44
				_ = am.Insert(k, uint64(i))
			}
		})
	}
}

func BenchmarkRangeScan(b *testing.B) {
	for _, name := range microMethods {
		b.Run(name, func(b *testing.B) {
			am := preloaded(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := uint64(i%1024) << 30
				am.RangeScan(lo, lo+(1<<30), func(core.Key, core.Value) bool { return true })
			}
		})
	}
}

func BenchmarkUpdate(b *testing.B) {
	for _, name := range microMethods {
		b.Run(name, func(b *testing.B) {
			am := preloaded(b, name)
			gen := workload.New(workload.Config{Seed: 2, Mix: workload.LookupOnly, InitialLen: microN})
			keys := make([]uint64, 0, microN)
			for _, op := range gen.InitialRecords() {
				keys = append(keys, op.Key)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				am.Update(keys[i%len(keys)], uint64(i))
			}
		})
	}
}

// BenchmarkWorkloadMixes profiles a representative structure under each
// canonical mix, reporting measured amplifications as benchmark metrics.
func BenchmarkWorkloadMixes(b *testing.B) {
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"read-heavy", workload.ReadHeavy},
		{"write-heavy", workload.WriteHeavy},
		{"scan-heavy", workload.ScanHeavy},
		{"balanced", workload.Balanced},
	}
	for _, name := range []string{"btree", "lsm-level", "zonemap"} {
		for _, m := range mixes {
			b.Run(fmt.Sprintf("%s/%s", name, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec, err := methods.Lookup(methods.Options{PoolPages: 16}, name)
					if err != nil {
						b.Fatal(err)
					}
					gen := workload.New(workload.Config{Seed: 1, Mix: m.mix, InitialLen: 1 << 13, RangeLen: 1 << 30})
					prof, err := core.RunProfile(spec.New(), gen, 4000)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(prof.Point.R, "RO")
						b.ReportMetric(prof.Point.U, "UO")
						b.ReportMetric(prof.Point.M, "MO")
					}
				}
			})
		}
	}
}

func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunExtensions(benchCfg)
		if r.VEBLines >= r.BinaryLines {
			b.Fatal("cache-oblivious ablation inverted")
		}
	}
}
